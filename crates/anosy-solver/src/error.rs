//! Solver errors.

use std::fmt;

/// Errors surfaced by [`crate::Solver`] queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// A resource limit from [`crate::SolverConfig`] was exhausted before the query finished.
    BudgetExhausted {
        /// Which limit was hit ("nodes" or "time").
        limit: &'static str,
        /// Number of nodes explored when the limit was hit.
        explored: u64,
    },
    /// The query mentioned a secret field outside the supplied space.
    ArityMismatch {
        /// The largest field index mentioned by the predicate.
        max_index: usize,
        /// The arity of the search space.
        arity: usize,
    },
    /// The search space given to the query was empty.
    EmptySpace,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::BudgetExhausted { limit, explored } => {
                write!(f, "solver {limit} budget exhausted after exploring {explored} boxes")
            }
            SolverError::ArityMismatch { max_index, arity } => write!(
                f,
                "predicate mentions field v{max_index} but the search space has arity {arity}"
            ),
            SolverError::EmptySpace => write!(f, "the search space is empty"),
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SolverError::BudgetExhausted { limit: "nodes", explored: 42 };
        assert!(e.to_string().contains("nodes"));
        assert!(e.to_string().contains("42"));
        assert!(SolverError::EmptySpace.to_string().contains("empty"));
        let a = SolverError::ArityMismatch { max_index: 3, arity: 2 };
        assert!(a.to_string().contains("v3"));
    }
}
