//! Satisfiability: depth-first branch-and-prune model search, over interned predicates.

use crate::propagate::propagate_id;
use crate::solver::SearchCtx;
use crate::SolverError;
use anosy_logic::{IntBox, Point, PredId, TriBool};

/// Finds a model of `pred` inside `space`, or proves there is none.
pub(crate) fn find_model(
    ctx: &mut SearchCtx<'_>,
    pred: PredId,
    space: &IntBox,
) -> Result<Option<Point>, SolverError> {
    if space.is_empty() {
        return Ok(None);
    }
    let mut stack = vec![space.clone()];
    while let Some(current) = stack.pop() {
        ctx.tick()?;
        let narrowed = match propagate_id(ctx.store, pred, &current, ctx.propagation_rounds()) {
            Some(b) => b,
            None => {
                ctx.pruned += 1;
                continue;
            }
        };
        match ctx.store.eval_abstract_pred(pred, &narrowed) {
            TriBool::True => {
                return Ok(narrowed.min_corner());
            }
            TriBool::False => {
                ctx.pruned += 1;
                continue;
            }
            TriBool::Unknown => {}
        }
        if narrowed.is_singleton() {
            let point = narrowed.min_corner().expect("singleton box has a corner");
            if ctx.store.eval_pred(pred, &point).unwrap_or(false) {
                return Ok(Some(point));
            }
            ctx.pruned += 1;
            continue;
        }
        let dim = narrowed
            .widest_splittable_dim()
            .expect("non-singleton, non-empty box has a splittable dimension");
        let (left, right) = narrowed.bisect(dim).expect("splittable dimension bisects");
        // Explore the left half first (deterministic, lexicographically smallest models first).
        stack.push(right);
        stack.push(left);
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverConfig};
    use anosy_logic::{IntExpr, Pred, SecretLayout};

    fn solver() -> Solver {
        Solver::with_config(SolverConfig::for_tests())
    }

    fn loc_space() -> IntBox {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build().space()
    }

    #[test]
    fn finds_a_model_of_the_nearby_query() {
        let mut s = solver();
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let model = s.find_model(&nearby, &loc_space()).unwrap().unwrap();
        assert!(nearby.eval(&model).unwrap());
    }

    #[test]
    fn reports_unsat_for_contradictions() {
        let mut s = solver();
        let pred = Pred::and(vec![IntExpr::var(0).le(10), IntExpr::var(0).ge(11)]);
        assert!(s.find_model(&pred, &loc_space()).unwrap().is_none());
        assert!(!s.is_satisfiable(&Pred::False, &loc_space()).unwrap());
    }

    #[test]
    fn finds_the_unique_model_of_two_diamonds() {
        // §2.1: nearby(200,200) && nearby(400,200) has the single model (300, 200).
        let mut s = solver();
        let d1 = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let d2 = ((IntExpr::var(0) - 400).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let model = s.find_model(&d1.and_also(d2), &loc_space()).unwrap().unwrap();
        assert_eq!(model, Point::new(vec![300, 200]));
    }

    #[test]
    fn model_is_lexicographically_smallest_for_simple_boxes() {
        let mut s = solver();
        let pred = Pred::and(vec![IntExpr::var(0).ge(17), IntExpr::var(1).ge(3)]);
        let model = s.find_model(&pred, &loc_space()).unwrap().unwrap();
        assert_eq!(model, Point::new(vec![17, 3]));
    }

    #[test]
    fn empty_space_has_no_model() {
        let mut s = solver();
        let empty = IntBox::new(vec![anosy_logic::Range::empty(), anosy_logic::Range::empty()]);
        assert!(s.find_model(&Pred::True, &empty).unwrap().is_none());
    }

    #[test]
    fn point_wise_disjunction_queries_are_solved() {
        let mut s = solver();
        let pred = IntExpr::var(0).one_of([7, 123, 399]).and_also(IntExpr::var(1).eq(42));
        let model = s.find_model(&pred, &loc_space()).unwrap().unwrap();
        assert!(pred.eval(&model).unwrap());
    }
}
