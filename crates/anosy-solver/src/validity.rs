//! Validity checking: `∀ x ∈ box. pred x`.

use crate::sat;
use crate::solver::SearchCtx;
use crate::SolverError;
use anosy_logic::{IntBox, Point, PredId};

/// Result of a validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityOutcome {
    /// The predicate holds for every point of the box.
    Valid,
    /// The predicate fails at the returned point.
    CounterExample(Point),
}

impl ValidityOutcome {
    /// Returns `true` for [`ValidityOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, ValidityOutcome::Valid)
    }

    /// The counterexample, if any.
    pub fn counterexample(&self) -> Option<&Point> {
        match self {
            ValidityOutcome::Valid => None,
            ValidityOutcome::CounterExample(p) => Some(p),
        }
    }
}

/// Checks validity by searching for a model of the negation. The negated NNF is memoized in the
/// store, so revalidating the same predicate skips the rewrite entirely.
pub(crate) fn check_validity(
    ctx: &mut SearchCtx<'_>,
    pred: PredId,
    space: &IntBox,
) -> Result<ValidityOutcome, SolverError> {
    let negated = ctx.store.negate_simplified(pred);
    Ok(match sat::find_model(ctx, negated, space)? {
        None => ValidityOutcome::Valid,
        Some(point) => ValidityOutcome::CounterExample(point),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Solver, SolverConfig};
    use anosy_logic::{IntExpr, Pred, Range, SecretLayout};

    fn solver() -> Solver {
        Solver::with_config(SolverConfig::for_tests())
    }

    #[test]
    fn valid_on_the_inner_box_of_the_diamond() {
        // Every point of [150,250]×[180,220] is nearby (200,200).
        let mut s = solver();
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let inner = IntBox::new(vec![Range::new(150, 250), Range::new(180, 220)]);
        assert!(s.is_valid(&nearby, &inner).unwrap());
    }

    #[test]
    fn counterexample_on_a_straddling_box() {
        let mut s = solver();
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let space = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build().space();
        let outcome = s.check_validity(&nearby, &space).unwrap();
        let cex = outcome.counterexample().expect("not valid on the full space").clone();
        assert!(!nearby.eval(&cex).unwrap());
        assert!(!outcome.is_valid());
    }

    #[test]
    fn vacuously_valid_on_the_empty_box() {
        let mut s = solver();
        let empty = IntBox::new(vec![Range::empty()]);
        assert!(s.is_valid(&Pred::False, &empty).unwrap());
    }

    #[test]
    fn validity_of_tautologies_and_contradictions() {
        let mut s = solver();
        let space = SecretLayout::builder().field("x", 0, 10).build().space();
        assert!(s.is_valid(&Pred::True, &space).unwrap());
        assert!(!s.is_valid(&Pred::False, &space).unwrap());
        let taut = Pred::or(vec![IntExpr::var(0).le(5), IntExpr::var(0).gt(5)]);
        assert!(s.is_valid(&taut, &space).unwrap());
    }
}
