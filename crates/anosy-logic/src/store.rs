//! The hash-consed term store: interned predicates and expressions behind copyable ids.
//!
//! The tree types [`Pred`]/[`IntExpr`] are the *construction and display* layer of the query
//! language: ergonomic builders, operator overloading, pretty-printing. Everything hot — the
//! solver's propagate/maximal search, synthesis refinement loops, verification — works over the
//! same subterms again and again, where tree clones, deep equality and re-simplification dominate.
//!
//! [`TermStore`] is the representation layer those consumers use instead. Every structurally
//! distinct node is stored exactly once in an arena and addressed by a copyable [`ExprId`] /
//! [`PredId`] handle, which gives:
//!
//! * **O(1) equality and hashing** — two interned terms are structurally equal iff their ids are
//!   equal, so candidate deduplication and memo keys cost a `u32` compare;
//! * **structural sharing** — a predicate mentioned by a thousand search nodes exists once;
//! * **store-resident memo tables** — [`TermStore::simplify`] (NNF + flattening + constant
//!   folding), [`TermStore::negate_simplified`], [`TermStore::pred_free_vars`] and the abstract
//!   interval evaluators [`TermStore::eval_abstract_expr`] / [`TermStore::eval_abstract_pred`]
//!   (keyed by `(id, box)`) are cached in the store and reused across search nodes, queries and
//!   sessions.
//!
//! Lowering is explicit: [`TermStore::intern_pred`] walks a [`Pred`] tree once and returns its
//! id; [`TermStore::pred_to_tree`] reconstructs a tree for display or for tree-only consumers.
//! Interning is semantics-preserving — evaluation of an id agrees with evaluation of the tree it
//! was lowered from (property-tested in `tests/proptest_logic.rs`).
//!
//! # Example
//!
//! ```
//! use anosy_logic::{IntExpr, TermStore};
//!
//! let mut store = TermStore::new();
//! let a = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
//! let b = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
//! let ia = store.intern_pred(&a);
//! let ib = store.intern_pred(&b);
//! assert_eq!(ia, ib); // structural equality is id equality
//! ```

use crate::{CmpOp, EvalError, IntBox, IntExpr, Point, Pred, Range, TriBool};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Handle to an interned [`IntExpr`] node. Copyable; equality/hash are O(1) and agree with
/// structural equality of the underlying term (within one store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

/// Handle to an interned [`Pred`] node. Copyable; equality/hash are O(1) and agree with
/// structural equality of the underlying term (within one store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(u32);

impl ExprId {
    /// The arena index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PredId {
    /// The arena index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An interned integer-expression node: the [`IntExpr`] constructors with id children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// An integer literal.
    Const(i64),
    /// The secret field with the given index.
    Var(usize),
    /// Sum of two expressions.
    Add(ExprId, ExprId),
    /// Difference of two expressions.
    Sub(ExprId, ExprId),
    /// Negation.
    Neg(ExprId),
    /// Multiplication by a constant factor.
    Scale(i64, ExprId),
    /// Absolute value.
    Abs(ExprId),
    /// Binary minimum.
    Min(ExprId, ExprId),
    /// Binary maximum.
    Max(ExprId, ExprId),
    /// Arithmetic if-then-else over a predicate condition.
    Ite(PredId, ExprId, ExprId),
}

/// An interned predicate node: the [`Pred`] constructors with id children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredNode {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A comparison between two integer expressions.
    Cmp(CmpOp, ExprId, ExprId),
    /// Logical negation.
    Not(PredId),
    /// N-ary conjunction (`true` when empty).
    And(Vec<PredId>),
    /// N-ary disjunction (`false` when empty).
    Or(Vec<PredId>),
    /// Implication.
    Implies(PredId, PredId),
    /// Bi-implication.
    Iff(PredId, PredId),
}

/// Shallow, allocation-free view of a [`PredNode`]: connectives carry only their child count,
/// so hot consumers (the solver's narrowing loops) can dispatch on a node without cloning its
/// child vector, fetching children by index via [`TermStore::pred_child`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredShape {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A comparison between two interned expressions.
    Cmp(CmpOp, ExprId, ExprId),
    /// Logical negation.
    Not(PredId),
    /// N-ary conjunction with the given child count.
    And(usize),
    /// N-ary disjunction with the given child count.
    Or(usize),
    /// Implication.
    Implies(PredId, PredId),
    /// Bi-implication.
    Iff(PredId, PredId),
}

/// Number of depth buckets the `(id, box)` memo counters are split into (see
/// [`depth_bucket`]).
pub const BOX_MEMO_DEPTH_BUCKETS: usize = 4;

/// Human-readable labels of the depth buckets, index-aligned with the
/// `box_memo_depth_*` arrays of [`StoreStats`].
pub const BOX_MEMO_DEPTH_LABELS: [&str; BOX_MEMO_DEPTH_BUCKETS] = ["1-3", "4-7", "8-15", "16+"];

/// Maps a term nesting depth to its profitability bucket. The bucket boundaries straddle the
/// [`BOX_MEMO_MIN_DEPTH`] *default*: at that default, buckets `0`/`1` are below the memo
/// threshold (lookups are bypassed and counted in `box_memo_depth_bypassed`) and buckets `2`/`3`
/// are at or above it (lookups are counted as hits or misses), so the per-bucket hit rates
/// directly answer "was the threshold placed well?". A store constructed with
/// [`TermStore::with_min_memo_depth`] moves the gate but keeps these fixed measurement buckets,
/// so runs at different thresholds stay comparable.
pub fn depth_bucket(depth: u8) -> usize {
    match depth {
        0..=3 => 0,
        4..=7 => 1,
        8..=15 => 2,
        _ => 3,
    }
}

// The bucket edges above and the labels below are aligned to the *default* memo threshold
// (buckets 0/1 below it, 2/3 at or above). Retuning the default must retune them together, or
// the per-bucket counters of default-configured stores silently lie about which side of the
// gate they measured. (Per-store overrides deliberately keep these fixed measurement buckets.)
const _: () = assert!(
    BOX_MEMO_MIN_DEPTH == 8,
    "BOX_MEMO_MIN_DEPTH changed: update depth_bucket() and BOX_MEMO_DEPTH_LABELS to match"
);

/// Hit/miss counters for the store's interning tables and memo caches.
///
/// Purely informational (never influence results); surfaced by the solver and session layers so
/// reports can attribute speedups to sharing and memoization rather than raw seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Intern calls answered by an existing expression node.
    pub expr_dedup_hits: u64,
    /// Expression nodes created (arena size).
    pub exprs_interned: u64,
    /// Intern calls answered by an existing predicate node.
    pub pred_dedup_hits: u64,
    /// Predicate nodes created (arena size).
    pub preds_interned: u64,
    /// Simplification/NNF requests answered from the memo table.
    pub simplify_hits: u64,
    /// Simplification/NNF requests computed fresh.
    pub simplify_misses: u64,
    /// Free-variable requests answered from the memo table.
    pub free_vars_hits: u64,
    /// Free-variable requests computed fresh.
    pub free_vars_misses: u64,
    /// Expression range analyses answered from the `(ExprId, IntBox)` memo table.
    pub range_hits: u64,
    /// Expression range analyses computed fresh.
    pub range_misses: u64,
    /// Predicate abstract evaluations answered from the `(PredId, IntBox)` memo table.
    pub tri_hits: u64,
    /// Predicate abstract evaluations computed fresh.
    pub tri_misses: u64,
    /// Times a box-keyed memo table overflowed its cap and was cleared.
    pub box_memo_evictions: u64,
    /// `(id, box)` memo lookups answered from the cache, bucketed by term depth (only buckets at
    /// or above the store's [`TermStore::min_memo_depth`] can be non-zero).
    pub box_memo_depth_hits: [u64; BOX_MEMO_DEPTH_BUCKETS],
    /// `(id, box)` memo lookups computed fresh, bucketed by term depth.
    pub box_memo_depth_misses: [u64; BOX_MEMO_DEPTH_BUCKETS],
    /// Abstract evaluations that skipped the `(id, box)` memo because the term was shallower
    /// than the store's [`TermStore::min_memo_depth`], bucketed by term depth. A high
    /// hypothetical hit rate here is the signal for *lowering* the threshold; the cost of these
    /// is one direct recomputation.
    pub box_memo_depth_bypassed: [u64; BOX_MEMO_DEPTH_BUCKETS],
    /// The `(id, box)` memo depth threshold in effect for the store this snapshot came from —
    /// reports print it as the "configured" value next to [`suggested_min_memo_depth`]'s
    /// derivation. Injected by [`TermStore::stats`] at read time; a bare
    /// `StoreStats::default()` carries `0`.
    pub box_memo_min_depth: u8,
}

impl StoreStats {
    /// Total memo-table hits across all caches (excluding interning dedup).
    pub fn cache_hits(&self) -> u64 {
        self.simplify_hits + self.free_vars_hits + self.range_hits + self.tri_hits
    }

    /// Total memo-table misses across all caches (excluding interning dedup).
    pub fn cache_misses(&self) -> u64 {
        self.simplify_misses + self.free_vars_misses + self.range_misses + self.tri_misses
    }

    /// Hit rate of the `(id, box)` memos in the given depth bucket, in `[0, 1]`; `0` when the
    /// bucket saw no memoized lookups (in particular, for every bucket below the threshold).
    pub fn box_memo_hit_rate(&self, bucket: usize) -> f64 {
        let hits = self.box_memo_depth_hits[bucket];
        let total = hits + self.box_memo_depth_misses[bucket];
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} exprs + {} preds interned ({} dedup hits), {} memo hits / {} misses",
            self.exprs_interned,
            self.preds_interned,
            self.expr_dedup_hits + self.pred_dedup_hits,
            self.cache_hits(),
            self.cache_misses()
        )
    }
}

/// Box-keyed memo tables are cleared once they exceed this many entries, bounding memory on
/// long-running sessions; the eviction is counted in [`StoreStats::box_memo_evictions`].
const BOX_MEMO_CAP: usize = 1 << 16;

/// Default for the depth below which terms are evaluated directly instead of through the
/// `(id, box)` memo tables — "keyed by `(id, box)` where profitable": for the shallow
/// comparisons that dominate benchmark queries, recomputing is measurably cheaper than hashing
/// the box (the fig5 suite runs at parity with the tree evaluator), while a hit on a genuinely
/// deep term saves a whole subtree walk and a miss costs one box hash it was going to dwarf
/// anyway. The threshold is a per-store construction parameter
/// ([`TermStore::with_min_memo_depth`], surfaced as `ServeConfig::box_memo_min_depth` by the
/// deployment layer); the per-depth-bucket counters in [`StoreStats`] exist to justify — or
/// retune, via [`suggested_min_memo_depth`] — the value from observed hit rates.
pub const BOX_MEMO_MIN_DEPTH: u8 = 8;

/// Derives a suggested `(id, box)` memo threshold from observed per-depth-bucket hit rates: the
/// lower edge of the shallowest bucket whose memoized lookups hit at least half the time (with a
/// minimum sample size, so a handful of lucky hits does not move the gate). When every measured
/// bucket is unprofitable the suggestion is the edge *above* the deepest measured bucket —
/// raising the gate past the region that demonstrably did not pay for its box hashes — saturating
/// at `u8::MAX` ("don't memoize") when even the deepest bucket failed to pay. With no memoized
/// lookups at all there is no evidence, and the suggestion is the [`BOX_MEMO_MIN_DEPTH`] default.
pub fn suggested_min_memo_depth(stats: &StoreStats) -> u8 {
    /// Fewer memoized lookups than this in a bucket is noise, not evidence.
    const MIN_SAMPLES: u64 = 32;
    /// Lower term-depth edge of each bucket, index-aligned with [`BOX_MEMO_DEPTH_LABELS`].
    const BUCKET_EDGES: [u8; BOX_MEMO_DEPTH_BUCKETS] = [1, 4, 8, 16];

    let mut deepest_measured = None;
    for (bucket, &edge) in BUCKET_EDGES.iter().enumerate() {
        let samples = stats.box_memo_depth_hits[bucket] + stats.box_memo_depth_misses[bucket];
        if samples < MIN_SAMPLES {
            continue;
        }
        deepest_measured = Some(bucket);
        if stats.box_memo_hit_rate(bucket) >= 0.5 {
            return edge;
        }
    }
    match deepest_measured {
        None => BOX_MEMO_MIN_DEPTH,
        Some(bucket) => BUCKET_EDGES.get(bucket + 1).copied().unwrap_or(u8::MAX),
    }
}

/// A hash-consed arena of predicates and integer expressions with memoized analyses.
///
/// See the [module docs](self) for the design. A store is an append-only value: ids are only
/// meaningful within the store that produced them, and interning the same term twice always
/// returns the same id.
///
/// Stores are `Clone`: a clone is a [`TermStore::snapshot`] — it carries the full arena *and*
/// every memo table, and ids remain valid in it (interning is deterministic and append-only, so
/// a clone taken at arena size `n` agrees with the original on the first `n` ids forever). This
/// is what the parallel solver shards are seeded with: each worker mutates only its private
/// snapshot's memo tables, no synchronization needed.
#[derive(Debug, Default, Clone)]
pub struct TermStore {
    exprs: Vec<ExprNode>,
    preds: Vec<PredNode>,
    /// Nesting depth per expression node (saturating at `u8::MAX`); gates the box-keyed memos.
    expr_depths: Vec<u8>,
    /// Nesting depth per predicate node (saturating at `u8::MAX`); gates the box-keyed memos.
    pred_depths: Vec<u8>,
    expr_ids: HashMap<ExprNode, ExprId>,
    pred_ids: HashMap<PredNode, PredId>,
    /// `nnf(p, negated)` results; keyed by the input id and the polarity.
    nnf_memo: HashMap<(PredId, bool), PredId>,
    /// `flatten(p)` results.
    flat_memo: HashMap<PredId, PredId>,
    /// Sorted, deduplicated free variables per predicate.
    pred_vars_memo: HashMap<PredId, Arc<[usize]>>,
    /// Sorted, deduplicated free variables per expression.
    expr_vars_memo: HashMap<ExprId, Arc<[usize]>>,
    /// Interval range of a (deep) expression over a box. Two-level so a hit costs one box hash
    /// and no clone.
    range_memo: HashMap<ExprId, HashMap<IntBox, Range>>,
    range_memo_len: usize,
    /// Three-valued truth of a (deep) predicate over a box.
    tri_memo: HashMap<PredId, HashMap<IntBox, TriBool>>,
    tri_memo_len: usize,
    /// Construction-time override of the `(id, box)` memo depth threshold; `None` means the
    /// [`BOX_MEMO_MIN_DEPTH`] default (and is what `Default`/`new` produce).
    min_memo_depth: Option<u8>,
    stats: StoreStats,
}

impl TermStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TermStore::default()
    }

    /// Creates an empty store whose `(id, box)` memo tables engage at the given term depth
    /// instead of the [`BOX_MEMO_MIN_DEPTH`] default. `0` memoizes everything; `u8::MAX`
    /// effectively disables the box-keyed memos (term depths saturate at `u8::MAX`, so only
    /// pathological terms still engage them). The threshold is purely a performance knob —
    /// analyses return identical results at any setting — and is preserved by
    /// [`TermStore::snapshot`].
    pub fn with_min_memo_depth(depth: u8) -> Self {
        TermStore { min_memo_depth: Some(depth), ..TermStore::default() }
    }

    /// The effective `(id, box)` memo depth threshold of this store.
    pub fn min_memo_depth(&self) -> u8 {
        self.min_memo_depth.unwrap_or(BOX_MEMO_MIN_DEPTH)
    }

    /// Number of distinct expression nodes interned so far.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Number of distinct predicate nodes interned so far.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// The store's hit/miss counters (with the effective memo threshold stamped in).
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.stats;
        stats.box_memo_min_depth = self.min_memo_depth();
        stats
    }

    /// An independent copy of the store: same arena, same ids, same memo tables. Workers of a
    /// sharded search each take one snapshot and then proceed without any synchronization; every
    /// id interned before the snapshot resolves identically in all copies.
    pub fn snapshot(&self) -> TermStore {
        self.clone()
    }

    /// Clears the hit/miss counters (the arena and memo tables are kept).
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
        // The interned counts are documented as arena sizes; the arena survives the reset, so
        // the counters must keep describing it.
        self.stats.exprs_interned = self.exprs.len() as u64;
        self.stats.preds_interned = self.preds.len() as u64;
    }

    /// The interned node behind an expression id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this store.
    pub fn expr_node(&self, id: ExprId) -> &ExprNode {
        &self.exprs[id.index()]
    }

    /// The interned node behind a predicate id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this store.
    pub fn pred_node(&self, id: PredId) -> &PredNode {
        &self.preds[id.index()]
    }

    /// Number of children of an `And`/`Or` node (`0` for every other node). Together with
    /// [`TermStore::pred_child`] this lets hot loops walk n-ary connectives without cloning the
    /// child vector.
    pub fn pred_children_len(&self, id: PredId) -> usize {
        match self.pred_node(id) {
            PredNode::And(ps) | PredNode::Or(ps) => ps.len(),
            _ => 0,
        }
    }

    /// The `i`-th child of an `And`/`Or` node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a connective or `i` is out of bounds.
    pub fn pred_child(&self, id: PredId, i: usize) -> PredId {
        match self.pred_node(id) {
            PredNode::And(ps) | PredNode::Or(ps) => ps[i],
            other => panic!("pred_child on non-connective node {other:?}"),
        }
    }

    fn expr_depth(&self, id: ExprId) -> u8 {
        self.expr_depths[id.index()]
    }

    fn pred_depth(&self, id: PredId) -> u8 {
        self.pred_depths[id.index()]
    }

    fn intern_expr_node(&mut self, node: ExprNode) -> ExprId {
        if let Some(&id) = self.expr_ids.get(&node) {
            self.stats.expr_dedup_hits += 1;
            return id;
        }
        let depth = match &node {
            ExprNode::Const(_) | ExprNode::Var(_) => 1,
            ExprNode::Add(a, b)
            | ExprNode::Sub(a, b)
            | ExprNode::Min(a, b)
            | ExprNode::Max(a, b) => self.expr_depth(*a).max(self.expr_depth(*b)).saturating_add(1),
            ExprNode::Neg(a) | ExprNode::Scale(_, a) | ExprNode::Abs(a) => {
                self.expr_depth(*a).saturating_add(1)
            }
            ExprNode::Ite(c, t, e) => self
                .pred_depth(*c)
                .max(self.expr_depth(*t))
                .max(self.expr_depth(*e))
                .saturating_add(1),
        };
        let id = ExprId(u32::try_from(self.exprs.len()).expect("term store arena overflow"));
        self.exprs.push(node.clone());
        self.expr_depths.push(depth);
        self.expr_ids.insert(node, id);
        self.stats.exprs_interned += 1;
        id
    }

    fn intern_pred_node(&mut self, node: PredNode) -> PredId {
        if let Some(&id) = self.pred_ids.get(&node) {
            self.stats.pred_dedup_hits += 1;
            return id;
        }
        let depth = match &node {
            PredNode::True | PredNode::False => 1,
            PredNode::Cmp(_, a, b) => {
                self.expr_depth(*a).max(self.expr_depth(*b)).saturating_add(1)
            }
            PredNode::Not(p) => self.pred_depth(*p).saturating_add(1),
            PredNode::And(ps) | PredNode::Or(ps) => {
                ps.iter().map(|p| self.pred_depth(*p)).max().unwrap_or(0).saturating_add(1)
            }
            PredNode::Implies(a, b) | PredNode::Iff(a, b) => {
                self.pred_depth(*a).max(self.pred_depth(*b)).saturating_add(1)
            }
        };
        let id = PredId(u32::try_from(self.preds.len()).expect("term store arena overflow"));
        self.preds.push(node.clone());
        self.pred_depths.push(depth);
        self.pred_ids.insert(node, id);
        self.stats.preds_interned += 1;
        id
    }

    // ------------------------------------------------------------------
    // Builders (pure interning; no simplification).
    // ------------------------------------------------------------------

    /// Interns the constant `true`.
    pub fn mk_true(&mut self) -> PredId {
        self.intern_pred_node(PredNode::True)
    }

    /// Interns the constant `false`.
    pub fn mk_false(&mut self) -> PredId {
        self.intern_pred_node(PredNode::False)
    }

    /// Interns an integer literal.
    pub fn mk_const(&mut self, value: i64) -> ExprId {
        self.intern_expr_node(ExprNode::Const(value))
    }

    /// Interns a secret-field reference.
    pub fn mk_var(&mut self, index: usize) -> ExprId {
        self.intern_expr_node(ExprNode::Var(index))
    }

    /// Interns a sum.
    pub fn mk_add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Add(a, b))
    }

    /// Interns a difference.
    pub fn mk_sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Sub(a, b))
    }

    /// Interns a negation.
    pub fn mk_neg(&mut self, a: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Neg(a))
    }

    /// Interns a multiplication by a constant.
    pub fn mk_scale(&mut self, k: i64, a: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Scale(k, a))
    }

    /// Interns an absolute value.
    pub fn mk_abs(&mut self, a: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Abs(a))
    }

    /// Interns a binary minimum.
    pub fn mk_min(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Min(a, b))
    }

    /// Interns a binary maximum.
    pub fn mk_max(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Max(a, b))
    }

    /// Interns an arithmetic if-then-else.
    pub fn mk_ite(&mut self, cond: PredId, t: ExprId, e: ExprId) -> ExprId {
        self.intern_expr_node(ExprNode::Ite(cond, t, e))
    }

    /// Interns a comparison.
    pub fn mk_cmp(&mut self, op: CmpOp, lhs: ExprId, rhs: ExprId) -> PredId {
        self.intern_pred_node(PredNode::Cmp(op, lhs, rhs))
    }

    /// Interns a logical negation.
    pub fn mk_not(&mut self, p: PredId) -> PredId {
        self.intern_pred_node(PredNode::Not(p))
    }

    /// Interns an n-ary conjunction.
    pub fn mk_and(&mut self, ps: Vec<PredId>) -> PredId {
        self.intern_pred_node(PredNode::And(ps))
    }

    /// Interns an n-ary disjunction.
    pub fn mk_or(&mut self, ps: Vec<PredId>) -> PredId {
        self.intern_pred_node(PredNode::Or(ps))
    }

    /// Interns an implication.
    pub fn mk_implies(&mut self, a: PredId, b: PredId) -> PredId {
        self.intern_pred_node(PredNode::Implies(a, b))
    }

    /// Interns a bi-implication.
    pub fn mk_iff(&mut self, a: PredId, b: PredId) -> PredId {
        self.intern_pred_node(PredNode::Iff(a, b))
    }

    // ------------------------------------------------------------------
    // Lowering and reconstruction.
    // ------------------------------------------------------------------

    /// Interns an expression tree, returning the id of its root. Shared subtrees collapse to
    /// shared ids.
    pub fn intern_expr(&mut self, expr: &IntExpr) -> ExprId {
        match expr {
            IntExpr::Const(c) => self.mk_const(*c),
            IntExpr::Var(i) => self.mk_var(*i),
            IntExpr::Add(a, b) => {
                let (a, b) = (self.intern_expr(a), self.intern_expr(b));
                self.mk_add(a, b)
            }
            IntExpr::Sub(a, b) => {
                let (a, b) = (self.intern_expr(a), self.intern_expr(b));
                self.mk_sub(a, b)
            }
            IntExpr::Neg(a) => {
                let a = self.intern_expr(a);
                self.mk_neg(a)
            }
            IntExpr::Scale(k, a) => {
                let a = self.intern_expr(a);
                self.mk_scale(*k, a)
            }
            IntExpr::Abs(a) => {
                let a = self.intern_expr(a);
                self.mk_abs(a)
            }
            IntExpr::Min(a, b) => {
                let (a, b) = (self.intern_expr(a), self.intern_expr(b));
                self.mk_min(a, b)
            }
            IntExpr::Max(a, b) => {
                let (a, b) = (self.intern_expr(a), self.intern_expr(b));
                self.mk_max(a, b)
            }
            IntExpr::Ite(c, t, e) => {
                let c = self.intern_pred(c);
                let (t, e) = (self.intern_expr(t), self.intern_expr(e));
                self.mk_ite(c, t, e)
            }
        }
    }

    /// Interns a predicate tree, returning the id of its root. Shared subtrees collapse to
    /// shared ids.
    pub fn intern_pred(&mut self, pred: &Pred) -> PredId {
        match pred {
            Pred::True => self.mk_true(),
            Pred::False => self.mk_false(),
            Pred::Cmp(op, a, b) => {
                let (a, b) = (self.intern_expr(a), self.intern_expr(b));
                self.mk_cmp(*op, a, b)
            }
            Pred::Not(p) => {
                let p = self.intern_pred(p);
                self.mk_not(p)
            }
            Pred::And(ps) => {
                let ids: Vec<PredId> = ps.iter().map(|p| self.intern_pred(p)).collect();
                self.mk_and(ids)
            }
            Pred::Or(ps) => {
                let ids: Vec<PredId> = ps.iter().map(|p| self.intern_pred(p)).collect();
                self.mk_or(ids)
            }
            Pred::Implies(a, b) => {
                let (a, b) = (self.intern_pred(a), self.intern_pred(b));
                self.mk_implies(a, b)
            }
            Pred::Iff(a, b) => {
                let (a, b) = (self.intern_pred(a), self.intern_pred(b));
                self.mk_iff(a, b)
            }
        }
    }

    /// Reconstructs the expression tree behind an id (for display and tree-only consumers).
    pub fn expr_to_tree(&self, id: ExprId) -> IntExpr {
        match self.expr_node(id).clone() {
            ExprNode::Const(c) => IntExpr::Const(c),
            ExprNode::Var(i) => IntExpr::Var(i),
            ExprNode::Add(a, b) => {
                IntExpr::Add(Arc::new(self.expr_to_tree(a)), Arc::new(self.expr_to_tree(b)))
            }
            ExprNode::Sub(a, b) => {
                IntExpr::Sub(Arc::new(self.expr_to_tree(a)), Arc::new(self.expr_to_tree(b)))
            }
            ExprNode::Neg(a) => IntExpr::Neg(Arc::new(self.expr_to_tree(a))),
            ExprNode::Scale(k, a) => IntExpr::Scale(k, Arc::new(self.expr_to_tree(a))),
            ExprNode::Abs(a) => IntExpr::Abs(Arc::new(self.expr_to_tree(a))),
            ExprNode::Min(a, b) => {
                IntExpr::Min(Arc::new(self.expr_to_tree(a)), Arc::new(self.expr_to_tree(b)))
            }
            ExprNode::Max(a, b) => {
                IntExpr::Max(Arc::new(self.expr_to_tree(a)), Arc::new(self.expr_to_tree(b)))
            }
            ExprNode::Ite(c, t, e) => IntExpr::Ite(
                Arc::new(self.pred_to_tree(c)),
                Arc::new(self.expr_to_tree(t)),
                Arc::new(self.expr_to_tree(e)),
            ),
        }
    }

    /// Reconstructs the predicate tree behind an id (for display and tree-only consumers).
    pub fn pred_to_tree(&self, id: PredId) -> Pred {
        match self.pred_node(id).clone() {
            PredNode::True => Pred::True,
            PredNode::False => Pred::False,
            PredNode::Cmp(op, a, b) => {
                Pred::Cmp(op, Arc::new(self.expr_to_tree(a)), Arc::new(self.expr_to_tree(b)))
            }
            PredNode::Not(p) => Pred::Not(Arc::new(self.pred_to_tree(p))),
            PredNode::And(ps) => Pred::And(ps.iter().map(|p| self.pred_to_tree(*p)).collect()),
            PredNode::Or(ps) => Pred::Or(ps.iter().map(|p| self.pred_to_tree(*p)).collect()),
            PredNode::Implies(a, b) => {
                Pred::Implies(Arc::new(self.pred_to_tree(a)), Arc::new(self.pred_to_tree(b)))
            }
            PredNode::Iff(a, b) => {
                Pred::Iff(Arc::new(self.pred_to_tree(a)), Arc::new(self.pred_to_tree(b)))
            }
        }
    }

    // ------------------------------------------------------------------
    // Concrete evaluation.
    // ------------------------------------------------------------------

    /// Evaluates an interned expression on a concrete point; agrees with
    /// [`IntExpr::eval`] on the tree the id was lowered from.
    ///
    /// # Errors
    ///
    /// Same contract as [`IntExpr::eval`].
    pub fn eval_expr(&self, id: ExprId, point: &Point) -> Result<i64, EvalError> {
        match *self.expr_node(id) {
            ExprNode::Const(c) => Ok(c),
            ExprNode::Var(i) => {
                point.get(i).ok_or(EvalError::UnknownVariable { index: i, arity: point.arity() })
            }
            ExprNode::Add(a, b) => self
                .eval_expr(a, point)?
                .checked_add(self.eval_expr(b, point)?)
                .ok_or(EvalError::Overflow { operation: "addition" }),
            ExprNode::Sub(a, b) => self
                .eval_expr(a, point)?
                .checked_sub(self.eval_expr(b, point)?)
                .ok_or(EvalError::Overflow { operation: "subtraction" }),
            ExprNode::Neg(a) => self
                .eval_expr(a, point)?
                .checked_neg()
                .ok_or(EvalError::Overflow { operation: "negation" }),
            ExprNode::Scale(k, a) => self
                .eval_expr(a, point)?
                .checked_mul(k)
                .ok_or(EvalError::Overflow { operation: "scaling" }),
            ExprNode::Abs(a) => self
                .eval_expr(a, point)?
                .checked_abs()
                .ok_or(EvalError::Overflow { operation: "absolute value" }),
            ExprNode::Min(a, b) => Ok(self.eval_expr(a, point)?.min(self.eval_expr(b, point)?)),
            ExprNode::Max(a, b) => Ok(self.eval_expr(a, point)?.max(self.eval_expr(b, point)?)),
            ExprNode::Ite(c, t, e) => {
                if self.eval_pred(c, point)? {
                    self.eval_expr(t, point)
                } else {
                    self.eval_expr(e, point)
                }
            }
        }
    }

    /// Evaluates an interned predicate on a concrete point; agrees with [`Pred::eval`] on the
    /// tree the id was lowered from.
    ///
    /// # Errors
    ///
    /// Same contract as [`Pred::eval`].
    pub fn eval_pred(&self, id: PredId, point: &Point) -> Result<bool, EvalError> {
        match self.pred_node(id) {
            PredNode::True => Ok(true),
            PredNode::False => Ok(false),
            PredNode::Cmp(op, a, b) => {
                Ok(op.apply(self.eval_expr(*a, point)?, self.eval_expr(*b, point)?))
            }
            PredNode::Not(p) => Ok(!self.eval_pred(*p, point)?),
            PredNode::And(ps) => {
                for p in ps {
                    if !self.eval_pred(*p, point)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            PredNode::Or(ps) => {
                for p in ps {
                    if self.eval_pred(*p, point)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            PredNode::Implies(a, b) => {
                Ok(!self.eval_pred(*a, point)? || self.eval_pred(*b, point)?)
            }
            PredNode::Iff(a, b) => Ok(self.eval_pred(*a, point)? == self.eval_pred(*b, point)?),
        }
    }

    /// A shallow, allocation-free copy of a predicate node (see [`PredShape`]).
    pub fn pred_shape(&self, id: PredId) -> PredShape {
        match self.pred_node(id) {
            PredNode::True => PredShape::True,
            PredNode::False => PredShape::False,
            PredNode::Cmp(op, a, b) => PredShape::Cmp(*op, *a, *b),
            PredNode::Not(p) => PredShape::Not(*p),
            PredNode::And(ps) => PredShape::And(ps.len()),
            PredNode::Or(ps) => PredShape::Or(ps.len()),
            PredNode::Implies(a, b) => PredShape::Implies(*a, *b),
            PredNode::Iff(a, b) => PredShape::Iff(*a, *b),
        }
    }

    // ------------------------------------------------------------------
    // Abstract (interval) evaluation with (id, box)-keyed memoization.
    // ------------------------------------------------------------------

    /// Range analysis: evaluates an interned expression over a box with interval arithmetic.
    /// Deep terms (where a hit saves a whole subtree walk) are memoized by `(id, box)` so
    /// identical analyses across search nodes are answered from the cache; shallow terms are
    /// recomputed directly, which is cheaper than hashing the box. Agrees with
    /// [`IntExpr::eval_abstract`].
    pub fn eval_abstract_expr(&mut self, id: ExprId, boxed: &IntBox) -> Range {
        let bucket = depth_bucket(self.expr_depth(id));
        let memoize = self.expr_depth(id) >= self.min_memo_depth();
        if memoize {
            if let Some(&r) = self.range_memo.get(&id).and_then(|per_box| per_box.get(boxed)) {
                self.stats.range_hits += 1;
                self.stats.box_memo_depth_hits[bucket] += 1;
                return r;
            }
            self.stats.range_misses += 1;
            self.stats.box_memo_depth_misses[bucket] += 1;
        } else {
            self.stats.box_memo_depth_bypassed[bucket] += 1;
        }
        // Only memoized misses are timed: a hit on the next identical lookup saves exactly this
        // much, which is the evidence the memo-threshold self-tuning item needs.
        let result = if memoize {
            anosy_telemetry::time("store.range_compute", || self.compute_abstract_expr(id, boxed))
        } else {
            self.compute_abstract_expr(id, boxed)
        };
        if memoize {
            if self.range_memo_len >= BOX_MEMO_CAP {
                self.range_memo.clear();
                self.range_memo_len = 0;
                self.stats.box_memo_evictions += 1;
            }
            self.range_memo.entry(id).or_default().insert(boxed.clone(), result);
            self.range_memo_len += 1;
        }
        result
    }

    fn compute_abstract_expr(&mut self, id: ExprId, boxed: &IntBox) -> Range {
        match self.expr_node(id).clone() {
            ExprNode::Const(c) => Range::singleton(c),
            ExprNode::Var(i) => {
                if i < boxed.arity() {
                    boxed.dim(i)
                } else {
                    Range::FULL
                }
            }
            ExprNode::Add(a, b) => {
                self.eval_abstract_expr(a, boxed).add(self.eval_abstract_expr(b, boxed))
            }
            ExprNode::Sub(a, b) => {
                self.eval_abstract_expr(a, boxed).sub(self.eval_abstract_expr(b, boxed))
            }
            ExprNode::Neg(a) => self.eval_abstract_expr(a, boxed).neg(),
            ExprNode::Scale(k, a) => self.eval_abstract_expr(a, boxed).mul_const(k),
            ExprNode::Abs(a) => self.eval_abstract_expr(a, boxed).abs(),
            ExprNode::Min(a, b) => {
                self.eval_abstract_expr(a, boxed).min(self.eval_abstract_expr(b, boxed))
            }
            ExprNode::Max(a, b) => {
                self.eval_abstract_expr(a, boxed).max(self.eval_abstract_expr(b, boxed))
            }
            ExprNode::Ite(c, t, e) => match self.eval_abstract_pred(c, boxed) {
                TriBool::True => self.eval_abstract_expr(t, boxed),
                TriBool::False => self.eval_abstract_expr(e, boxed),
                TriBool::Unknown => {
                    self.eval_abstract_expr(t, boxed).hull(self.eval_abstract_expr(e, boxed))
                }
            },
        }
    }

    /// Abstract evaluation: three-valued truth of an interned predicate over every point of a
    /// box. Deep predicates are memoized by `(id, box)`; shallow ones are recomputed directly.
    /// Agrees with [`Pred::eval_abstract`] and inherits its soundness contract.
    pub fn eval_abstract_pred(&mut self, id: PredId, boxed: &IntBox) -> TriBool {
        let bucket = depth_bucket(self.pred_depth(id));
        let memoize = self.pred_depth(id) >= self.min_memo_depth();
        if memoize {
            if let Some(&t) = self.tri_memo.get(&id).and_then(|per_box| per_box.get(boxed)) {
                self.stats.tri_hits += 1;
                self.stats.box_memo_depth_hits[bucket] += 1;
                return t;
            }
            self.stats.tri_misses += 1;
            self.stats.box_memo_depth_misses[bucket] += 1;
        } else {
            self.stats.box_memo_depth_bypassed[bucket] += 1;
        }
        let result = if memoize {
            anosy_telemetry::time("store.tri_compute", || self.compute_abstract_pred(id, boxed))
        } else {
            self.compute_abstract_pred(id, boxed)
        };
        if memoize {
            if self.tri_memo_len >= BOX_MEMO_CAP {
                self.tri_memo.clear();
                self.tri_memo_len = 0;
                self.stats.box_memo_evictions += 1;
            }
            self.tri_memo.entry(id).or_default().insert(boxed.clone(), result);
            self.tri_memo_len += 1;
        }
        result
    }

    fn compute_abstract_pred(&mut self, id: PredId, boxed: &IntBox) -> TriBool {
        match self.pred_shape(id) {
            PredShape::True => TriBool::True,
            PredShape::False => TriBool::False,
            PredShape::Cmp(op, a, b) => {
                let ra = self.eval_abstract_expr(a, boxed);
                let rb = self.eval_abstract_expr(b, boxed);
                match op {
                    CmpOp::Le => ra.le(rb),
                    CmpOp::Lt => ra.lt(rb),
                    CmpOp::Ge => rb.le(ra),
                    CmpOp::Gt => rb.lt(ra),
                    CmpOp::Eq => ra.eq_tri(rb),
                    CmpOp::Ne => ra.eq_tri(rb).negate(),
                }
            }
            PredShape::Not(p) => self.eval_abstract_pred(p, boxed).negate(),
            PredShape::And(len) => {
                let mut acc = TriBool::True;
                for i in 0..len {
                    let child = self.pred_child(id, i);
                    acc = acc.and(self.eval_abstract_pred(child, boxed));
                }
                acc
            }
            PredShape::Or(len) => {
                let mut acc = TriBool::False;
                for i in 0..len {
                    let child = self.pred_child(id, i);
                    acc = acc.or(self.eval_abstract_pred(child, boxed));
                }
                acc
            }
            PredShape::Implies(a, b) => {
                let ra = self.eval_abstract_pred(a, boxed);
                let rb = self.eval_abstract_pred(b, boxed);
                ra.implies(rb)
            }
            PredShape::Iff(a, b) => {
                let ra = self.eval_abstract_pred(a, boxed);
                let rb = self.eval_abstract_pred(b, boxed);
                ra.implies(rb).and(rb.implies(ra))
            }
        }
    }

    // ------------------------------------------------------------------
    // Free variables.
    // ------------------------------------------------------------------

    /// Sorted, deduplicated free variables of an interned expression (memoized).
    pub fn expr_free_vars(&mut self, id: ExprId) -> Arc<[usize]> {
        if let Some(vars) = self.expr_vars_memo.get(&id) {
            self.stats.free_vars_hits += 1;
            return Arc::clone(vars);
        }
        self.stats.free_vars_misses += 1;
        let vars: Arc<[usize]> = match self.expr_node(id).clone() {
            ExprNode::Const(_) => Arc::from([]),
            ExprNode::Var(i) => Arc::from([i]),
            ExprNode::Add(a, b)
            | ExprNode::Sub(a, b)
            | ExprNode::Min(a, b)
            | ExprNode::Max(a, b) => merge_vars(&[self.expr_free_vars(a), self.expr_free_vars(b)]),
            ExprNode::Neg(a) | ExprNode::Scale(_, a) | ExprNode::Abs(a) => self.expr_free_vars(a),
            ExprNode::Ite(c, t, e) => merge_vars(&[
                self.pred_free_vars(c),
                self.expr_free_vars(t),
                self.expr_free_vars(e),
            ]),
        };
        self.expr_vars_memo.insert(id, Arc::clone(&vars));
        vars
    }

    /// Sorted, deduplicated free variables of an interned predicate (memoized); agrees with
    /// [`Pred::free_vars`].
    pub fn pred_free_vars(&mut self, id: PredId) -> Arc<[usize]> {
        if let Some(vars) = self.pred_vars_memo.get(&id) {
            self.stats.free_vars_hits += 1;
            return Arc::clone(vars);
        }
        self.stats.free_vars_misses += 1;
        let vars: Arc<[usize]> = match self.pred_node(id).clone() {
            PredNode::True | PredNode::False => Arc::from([]),
            PredNode::Cmp(_, a, b) => merge_vars(&[self.expr_free_vars(a), self.expr_free_vars(b)]),
            PredNode::Not(p) => self.pred_free_vars(p),
            PredNode::And(ps) | PredNode::Or(ps) => {
                let sets: Vec<Arc<[usize]>> = ps.iter().map(|p| self.pred_free_vars(*p)).collect();
                merge_vars(&sets)
            }
            PredNode::Implies(a, b) | PredNode::Iff(a, b) => {
                merge_vars(&[self.pred_free_vars(a), self.pred_free_vars(b)])
            }
        };
        self.pred_vars_memo.insert(id, Arc::clone(&vars));
        vars
    }

    /// The largest field index mentioned by an interned predicate, if any (arity checks).
    pub fn max_free_var(&mut self, id: PredId) -> Option<usize> {
        self.pred_free_vars(id).last().copied()
    }

    // ------------------------------------------------------------------
    // Simplification (NNF + flattening + constant folding), memoized.
    // ------------------------------------------------------------------

    /// Simplifies an interned predicate — pushes negation down to comparisons, rewrites `=>` and
    /// `<=>`, flattens nested `&&`/`||` and folds constants — and returns the id of the result.
    ///
    /// Logically equivalent to the input on every point; mirrors [`crate::simplify_pred`] on
    /// trees and is memoized in the store, so repeated simplification of the same term (and of
    /// shared subterms) is O(1). Idempotent: `simplify(simplify(p)) == simplify(p)` as ids.
    pub fn simplify(&mut self, id: PredId) -> PredId {
        let nnf = self.nnf(id, false);
        self.flatten(nnf)
    }

    /// Simplified negation-normal form of `!p` — what the solver's validity and maximal-box
    /// searches refute. Memoized; repeated calls for the same predicate are O(1).
    pub fn negate_simplified(&mut self, id: PredId) -> PredId {
        let nnf = self.nnf(id, true);
        self.flatten(nnf)
    }

    /// Returns `true` when the interned predicate is in negation normal form (no `Not`,
    /// `Implies` or `Iff` nodes); mirrors [`crate::is_nnf`].
    pub fn is_nnf(&self, id: PredId) -> bool {
        match self.pred_node(id) {
            PredNode::True | PredNode::False | PredNode::Cmp(..) => true,
            PredNode::Not(_) | PredNode::Implies(..) | PredNode::Iff(..) => false,
            PredNode::And(ps) | PredNode::Or(ps) => ps.iter().all(|p| self.is_nnf(*p)),
        }
    }

    /// Pushes negation inward; `negated` tracks an odd number of enclosing negations.
    fn nnf(&mut self, id: PredId, negated: bool) -> PredId {
        if let Some(&cached) = self.nnf_memo.get(&(id, negated)) {
            self.stats.simplify_hits += 1;
            return cached;
        }
        self.stats.simplify_misses += 1;
        let result = match self.pred_node(id).clone() {
            PredNode::True => {
                if negated {
                    self.mk_false()
                } else {
                    self.mk_true()
                }
            }
            PredNode::False => {
                if negated {
                    self.mk_true()
                } else {
                    self.mk_false()
                }
            }
            PredNode::Cmp(op, a, b) => {
                let op = if negated { op.negate() } else { op };
                self.mk_cmp(op, a, b)
            }
            PredNode::Not(p) => self.nnf(p, !negated),
            PredNode::And(ps) => {
                let children: Vec<PredId> = ps.iter().map(|p| self.nnf(*p, negated)).collect();
                if negated {
                    self.mk_or(children)
                } else {
                    self.mk_and(children)
                }
            }
            PredNode::Or(ps) => {
                let children: Vec<PredId> = ps.iter().map(|p| self.nnf(*p, negated)).collect();
                if negated {
                    self.mk_and(children)
                } else {
                    self.mk_or(children)
                }
            }
            PredNode::Implies(a, b) => {
                if negated {
                    // !(a => b) ≡ a && !b
                    let children = vec![self.nnf(a, false), self.nnf(b, true)];
                    self.mk_and(children)
                } else {
                    // a => b ≡ !a || b
                    let children = vec![self.nnf(a, true), self.nnf(b, false)];
                    self.mk_or(children)
                }
            }
            PredNode::Iff(a, b) => {
                // a <=> b ≡ (a && b) || (!a && !b); negated: (a && !b) || (!a && b)
                let (pa, na) = (self.nnf(a, false), self.nnf(a, true));
                let (pb, nb) = (self.nnf(b, false), self.nnf(b, true));
                let (first, second) = if negated {
                    (self.mk_and(vec![pa, nb]), self.mk_and(vec![na, pb]))
                } else {
                    (self.mk_and(vec![pa, pb]), self.mk_and(vec![na, nb]))
                };
                self.mk_or(vec![first, second])
            }
        };
        self.nnf_memo.insert((id, negated), result);
        result
    }

    fn expr_as_const(&self, id: ExprId) -> Option<i64> {
        match self.expr_node(id) {
            ExprNode::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Flattens nested conjunctions/disjunctions and folds constants.
    fn flatten(&mut self, id: PredId) -> PredId {
        if let Some(&cached) = self.flat_memo.get(&id) {
            self.stats.simplify_hits += 1;
            return cached;
        }
        self.stats.simplify_misses += 1;
        let result = match self.pred_node(id).clone() {
            PredNode::And(ps) => {
                let mut out: Vec<PredId> = Vec::new();
                let mut always_false = false;
                for p in ps {
                    let flat = self.flatten(p);
                    match self.pred_node(flat).clone() {
                        PredNode::True => {}
                        PredNode::False => {
                            always_false = true;
                            break;
                        }
                        PredNode::And(inner) => out.extend(inner),
                        _ => out.push(flat),
                    }
                }
                if always_false {
                    self.mk_false()
                } else {
                    match out.len() {
                        0 => self.mk_true(),
                        1 => out[0],
                        _ => self.mk_and(out),
                    }
                }
            }
            PredNode::Or(ps) => {
                let mut out: Vec<PredId> = Vec::new();
                let mut always_true = false;
                for p in ps {
                    let flat = self.flatten(p);
                    match self.pred_node(flat).clone() {
                        PredNode::False => {}
                        PredNode::True => {
                            always_true = true;
                            break;
                        }
                        PredNode::Or(inner) => out.extend(inner),
                        _ => out.push(flat),
                    }
                }
                if always_true {
                    self.mk_true()
                } else {
                    match out.len() {
                        0 => self.mk_false(),
                        1 => out[0],
                        _ => self.mk_or(out),
                    }
                }
            }
            PredNode::Cmp(op, a, b) => {
                if let (Some(ca), Some(cb)) = (self.expr_as_const(a), self.expr_as_const(b)) {
                    if op.apply(ca, cb) {
                        self.mk_true()
                    } else {
                        self.mk_false()
                    }
                } else {
                    id
                }
            }
            PredNode::Not(p) => {
                let flat = self.flatten(p);
                match self.pred_node(flat) {
                    PredNode::True => self.mk_false(),
                    PredNode::False => self.mk_true(),
                    _ => self.mk_not(flat),
                }
            }
            _ => id,
        };
        self.flat_memo.insert(id, result);
        result
    }

    // ------------------------------------------------------------------
    // Structural reporting.
    // ------------------------------------------------------------------

    /// Number of AST nodes reachable from a predicate id, counted *with* sharing (a shared
    /// subterm is counted each time it occurs), so the result agrees with
    /// [`Pred::node_count`] on the tree the id was lowered from.
    pub fn pred_node_count(&self, id: PredId) -> usize {
        match self.pred_node(id) {
            PredNode::True | PredNode::False => 1,
            PredNode::Cmp(_, a, b) => 1 + self.expr_node_count(*a) + self.expr_node_count(*b),
            PredNode::Not(p) => 1 + self.pred_node_count(*p),
            PredNode::And(ps) | PredNode::Or(ps) => {
                1 + ps.iter().map(|p| self.pred_node_count(*p)).sum::<usize>()
            }
            PredNode::Implies(a, b) | PredNode::Iff(a, b) => {
                1 + self.pred_node_count(*a) + self.pred_node_count(*b)
            }
        }
    }

    /// Number of AST nodes reachable from an expression id, counted with sharing (see
    /// [`TermStore::pred_node_count`]).
    pub fn expr_node_count(&self, id: ExprId) -> usize {
        match self.expr_node(id) {
            ExprNode::Const(_) | ExprNode::Var(_) => 1,
            ExprNode::Add(a, b)
            | ExprNode::Sub(a, b)
            | ExprNode::Min(a, b)
            | ExprNode::Max(a, b) => 1 + self.expr_node_count(*a) + self.expr_node_count(*b),
            ExprNode::Neg(a) | ExprNode::Scale(_, a) | ExprNode::Abs(a) => {
                1 + self.expr_node_count(*a)
            }
            ExprNode::Ite(c, t, e) => {
                1 + self.pred_node_count(*c) + self.expr_node_count(*t) + self.expr_node_count(*e)
            }
        }
    }
}

/// Merges sorted, deduplicated variable lists into one.
fn merge_vars(sets: &[Arc<[usize]>]) -> Arc<[usize]> {
    let mut out: Vec<usize> = Vec::new();
    for set in sets {
        out.extend(set.iter().copied());
    }
    out.sort_unstable();
    out.dedup();
    Arc::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simplify_pred, IntExpr, SecretLayout};

    fn nearby(xo: i64, yo: i64) -> Pred {
        ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100)
    }

    #[test]
    fn interning_is_hash_consed() {
        let mut store = TermStore::new();
        let a = store.intern_pred(&nearby(200, 200));
        let b = store.intern_pred(&nearby(200, 200));
        assert_eq!(a, b);
        let c = store.intern_pred(&nearby(400, 200));
        assert_ne!(a, c);
        // The two diamonds share every subterm except the two differing literals and their
        // enclosing spines.
        assert!(store.stats().expr_dedup_hits > 0);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let mut store = TermStore::new();
        let original = nearby(200, 200)
            .and_also(IntExpr::var(1).one_of([1, 2, 3]))
            .implies(IntExpr::var(0).le(5).negate());
        let id = store.intern_pred(&original);
        assert_eq!(store.pred_to_tree(id), original);
        assert_eq!(store.pred_node_count(id), original.node_count());
    }

    #[test]
    fn eval_agrees_with_trees() {
        let mut store = TermStore::new();
        let pred = nearby(200, 200);
        let id = store.intern_pred(&pred);
        for coords in [[300, 200], [0, 0], [200, 300], [301, 200]] {
            let p = Point::new(coords.to_vec());
            assert_eq!(store.eval_pred(id, &p), pred.eval(&p));
        }
    }

    /// A predicate of nesting depth ≥ `levels` (alternating connectives, so the depth really
    /// grows): the shape whose abstract evaluation is worth memoizing.
    fn deep_pred(levels: i64) -> Pred {
        let mut pred = nearby(0, 0);
        for k in 1..levels {
            pred = if k % 2 == 0 {
                Pred::and(vec![pred, nearby(k, -k)])
            } else {
                Pred::or(vec![pred, nearby(-k, k).negate()])
            };
        }
        pred
    }

    #[test]
    fn abstract_eval_agrees_with_trees_and_memoizes() {
        let mut store = TermStore::new();
        // Deep enough (≥ BOX_MEMO_MIN_DEPTH) that the (id, box) memo tables engage.
        let pred = deep_pred(8);
        let id = store.intern_pred(&pred);
        let boxes = [
            IntBox::new(vec![Range::new(180, 220), Range::new(180, 220)]),
            IntBox::new(vec![Range::new(0, 50), Range::new(0, 50)]),
            IntBox::new(vec![Range::new(100, 350), Range::new(100, 350)]),
        ];
        for boxed in &boxes {
            assert_eq!(store.eval_abstract_pred(id, boxed), pred.eval_abstract(boxed));
        }
        let misses = store.stats().tri_misses;
        for boxed in &boxes {
            assert_eq!(store.eval_abstract_pred(id, boxed), pred.eval_abstract(boxed));
        }
        assert_eq!(store.stats().tri_misses, misses, "second pass should be pure hits");
        assert!(store.stats().tri_hits >= boxes.len() as u64);
    }

    #[test]
    fn min_memo_depth_is_a_construction_parameter_and_never_changes_results() {
        let pred = deep_pred(6); // deep enough for depth 4, below the default gate of 8
        let boxed = IntBox::new(vec![Range::new(0, 300), Range::new(0, 300)]);

        let mut default_store = TermStore::new();
        assert_eq!(default_store.min_memo_depth(), BOX_MEMO_MIN_DEPTH);
        let id = default_store.intern_pred(&pred);
        let reference = default_store.eval_abstract_pred(id, &boxed);

        // A lowered gate engages the memo for the same term; answers are identical.
        let mut eager = TermStore::with_min_memo_depth(0);
        assert_eq!(eager.min_memo_depth(), 0);
        let eager_id = eager.intern_pred(&pred);
        assert_eq!(eager.eval_abstract_pred(eager_id, &boxed), reference);
        assert_eq!(eager.eval_abstract_pred(eager_id, &boxed), reference);
        assert!(eager.stats().tri_hits > 0, "gate at 0 must memoize shallow predicates");
        assert_eq!(
            eager.stats().box_memo_depth_bypassed,
            [0; BOX_MEMO_DEPTH_BUCKETS],
            "gate at 0 bypasses nothing"
        );

        // A raised gate bypasses everything; answers are still identical, and snapshots keep
        // the configured threshold.
        let mut lazy = TermStore::with_min_memo_depth(u8::MAX);
        let lazy_id = lazy.intern_pred(&pred);
        assert_eq!(lazy.eval_abstract_pred(lazy_id, &boxed), reference);
        assert_eq!(lazy.eval_abstract_pred(lazy_id, &boxed), reference);
        assert_eq!(lazy.stats().tri_hits + lazy.stats().tri_misses, 0);
        assert_eq!(lazy.snapshot().min_memo_depth(), u8::MAX);

        // Stats snapshots carry the effective threshold for reports.
        assert_eq!(default_store.stats().box_memo_min_depth, BOX_MEMO_MIN_DEPTH);
        assert_eq!(eager.stats().box_memo_min_depth, 0);
        assert_eq!(TermStore::with_min_memo_depth(3).stats().box_memo_min_depth, 3);
    }

    #[test]
    fn suggested_min_memo_depth_follows_the_bucket_evidence() {
        // No evidence: keep the default.
        assert_eq!(suggested_min_memo_depth(&StoreStats::default()), BOX_MEMO_MIN_DEPTH);

        // The 8-15 bucket pays for itself: suggest its lower edge.
        let mut stats = StoreStats::default();
        stats.box_memo_depth_hits[2] = 80;
        stats.box_memo_depth_misses[2] = 20;
        assert_eq!(suggested_min_memo_depth(&stats), 8);

        // The 4-7 bucket also pays: the gate can drop to 4.
        stats.box_memo_depth_hits[1] = 60;
        stats.box_memo_depth_misses[1] = 40;
        assert_eq!(suggested_min_memo_depth(&stats), 4);

        // A profitable-looking bucket without enough samples is ignored.
        let mut sparse = StoreStats::default();
        sparse.box_memo_depth_hits[1] = 10;
        sparse.box_memo_depth_misses[1] = 0;
        assert_eq!(suggested_min_memo_depth(&sparse), BOX_MEMO_MIN_DEPTH);

        // Unprofitable measured buckets push the gate above the deepest one...
        let mut cold = StoreStats::default();
        cold.box_memo_depth_hits[2] = 10;
        cold.box_memo_depth_misses[2] = 90;
        assert_eq!(suggested_min_memo_depth(&cold), 16);

        // ... and saturate to "don't memoize" when even 16+ fails to pay.
        cold.box_memo_depth_hits[3] = 0;
        cold.box_memo_depth_misses[3] = 100;
        assert_eq!(suggested_min_memo_depth(&cold), u8::MAX);
    }

    #[test]
    fn free_vars_agree_with_trees() {
        let mut store = TermStore::new();
        let pred = (IntExpr::var(3) + IntExpr::var(1)).le(IntExpr::var(3));
        let id = store.intern_pred(&pred);
        assert_eq!(store.pred_free_vars(id).to_vec(), pred.free_vars());
        assert_eq!(store.max_free_var(id), Some(3));
        let t = store.mk_true();
        assert_eq!(store.max_free_var(t), None);
    }

    #[test]
    fn simplify_agrees_with_tree_simplification() {
        let mut store = TermStore::new();
        let cases = vec![
            nearby(200, 200).negate(),
            IntExpr::var(0).lt(0).negate().negate(),
            Pred::and(vec![IntExpr::var(0).ge(0), IntExpr::var(1).ge(0)]).negate(),
            IntExpr::var(0).ge(0).implies(IntExpr::var(1).ge(0)),
            IntExpr::var(0).ge(0).iff(IntExpr::var(1).ge(0)).negate(),
            Pred::and(vec![Pred::True, IntExpr::constant(2).le(3), IntExpr::var(0).ge(0)]),
            Pred::and(vec![]).negate(),
        ];
        for pred in cases {
            let id = store.intern_pred(&pred);
            let simplified = store.simplify(id);
            let tree_simplified = store.intern_pred(&simplify_pred(&pred));
            assert_eq!(simplified, tree_simplified, "mismatch for {pred}");
            assert!(store.is_nnf(simplified));
        }
    }

    #[test]
    fn simplify_is_idempotent_and_memoized() {
        let mut store = TermStore::new();
        let pred = nearby(200, 200).negate().iff(IntExpr::var(1).ge(7));
        let id = store.intern_pred(&pred);
        let once = store.simplify(id);
        let hits_before = store.stats().simplify_hits;
        let again = store.simplify(id);
        assert_eq!(once, again);
        assert!(store.stats().simplify_hits > hits_before, "second simplify should hit the memo");
        assert_eq!(store.simplify(once), once, "simplification is idempotent");
    }

    #[test]
    fn negate_simplified_is_semantics_preserving() {
        let mut store = TermStore::new();
        let layout = SecretLayout::builder().field("x", -5, 5).field("y", -5, 5).build();
        let pred = nearby(0, 0).or_else(IntExpr::var(0).ge(3).implies(IntExpr::var(1).le(2)));
        let id = store.intern_pred(&pred);
        let negated = store.negate_simplified(id);
        assert!(store.is_nnf(negated));
        for p in layout.space().points() {
            assert_eq!(
                store.eval_pred(negated, &p).unwrap(),
                !pred.eval(&p).unwrap(),
                "negation differs at {p}"
            );
        }
    }

    #[test]
    fn builders_and_counts() {
        let mut store = TermStore::new();
        let x = store.mk_var(0);
        let five = store.mk_const(5);
        let sum = store.mk_add(x, five);
        let cmp = store.mk_cmp(CmpOp::Le, sum, five);
        let not = store.mk_not(cmp);
        assert_eq!(store.pred_node_count(not), 6);
        assert_eq!(store.expr_count(), 3);
        assert_eq!(store.pred_count(), 2);
        // Interning the same sum again is a dedup hit, not a new node.
        let before = store.expr_count();
        let sum2 = store.mk_add(x, five);
        assert_eq!(sum, sum2);
        assert_eq!(store.expr_count(), before);
    }

    #[test]
    fn stats_display_and_reset() {
        let mut store = TermStore::new();
        let id = store.intern_pred(&nearby(200, 200));
        let _ = store.simplify(id);
        let s = store.stats();
        assert!(s.preds_interned > 0);
        assert!(s.cache_misses() > 0);
        assert!(s.to_string().contains("interned"));
        store.reset_stats();
        let reset = store.stats();
        assert_eq!(reset.cache_hits() + reset.cache_misses(), 0);
        assert_eq!(reset.expr_dedup_hits + reset.pred_dedup_hits, 0);
        // Arena-size counters survive the reset: the arena itself was not cleared.
        assert_eq!(reset.exprs_interned as usize, store.expr_count());
        assert_eq!(reset.preds_interned as usize, store.pred_count());
    }

    #[test]
    fn depth_buckets_straddle_the_memo_threshold() {
        assert_eq!(depth_bucket(1), 0);
        assert_eq!(depth_bucket(3), 0);
        assert_eq!(depth_bucket(4), 1);
        assert_eq!(depth_bucket(BOX_MEMO_MIN_DEPTH - 1), 1);
        assert_eq!(depth_bucket(BOX_MEMO_MIN_DEPTH), 2);
        assert_eq!(depth_bucket(15), 2);
        assert_eq!(depth_bucket(16), 3);
        assert_eq!(depth_bucket(u8::MAX), 3);
        assert_eq!(BOX_MEMO_DEPTH_LABELS.len(), BOX_MEMO_DEPTH_BUCKETS);
    }

    #[test]
    fn box_memo_counters_split_by_depth() {
        let mut store = TermStore::new();
        let shallow = store.intern_pred(&nearby(200, 200));
        let deep = store.intern_pred(&deep_pred(8));
        let boxed = IntBox::new(vec![Range::new(0, 400), Range::new(0, 400)]);
        store.eval_abstract_pred(shallow, &boxed);
        let s = store.stats();
        // A shallow evaluation only bypasses (in the low buckets); nothing is memoized.
        assert!(s.box_memo_depth_bypassed[0] + s.box_memo_depth_bypassed[1] > 0);
        assert_eq!(s.box_memo_depth_hits, [0; BOX_MEMO_DEPTH_BUCKETS]);
        assert_eq!(s.box_memo_hit_rate(2), 0.0);
        // A deep evaluation misses, then hits, only in buckets >= the threshold.
        store.eval_abstract_pred(deep, &boxed);
        store.eval_abstract_pred(deep, &boxed);
        let s = store.stats();
        assert_eq!(s.box_memo_depth_hits[0], 0);
        assert_eq!(s.box_memo_depth_hits[1], 0);
        assert!(s.box_memo_depth_misses[2] + s.box_memo_depth_misses[3] > 0);
        assert!(s.box_memo_depth_hits[2] + s.box_memo_depth_hits[3] > 0);
        let deep_rate = s.box_memo_hit_rate(2).max(s.box_memo_hit_rate(3));
        assert!(deep_rate > 0.0 && deep_rate <= 1.0);
    }

    #[test]
    fn snapshots_agree_on_pre_snapshot_ids_and_diverge_after() {
        let mut store = TermStore::new();
        let pred = deep_pred(9);
        let id = store.intern_pred(&pred);
        let simplified = store.simplify(id);
        let mut snap = store.snapshot();
        // Ids interned before the snapshot resolve identically in both copies.
        assert_eq!(snap.pred_to_tree(id), store.pred_to_tree(id));
        assert_eq!(snap.simplify(id), simplified, "memo tables travel with the snapshot");
        let boxed = IntBox::new(vec![Range::new(0, 40), Range::new(0, 40)]);
        assert_eq!(snap.eval_abstract_pred(id, &boxed), store.eval_abstract_pred(id, &boxed));
        // Post-snapshot interning is private to each copy.
        let only_in_snap = snap.intern_pred(&nearby(7, 7));
        assert_eq!(snap.pred_to_tree(only_in_snap), nearby(7, 7));
        assert!(store.pred_count() <= snap.pred_count());
    }

    #[test]
    fn stores_and_ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TermStore>();
        assert_send_sync::<StoreStats>();
        assert_send_sync::<ExprId>();
        assert_send_sync::<PredId>();
        assert_send_sync::<Pred>();
        assert_send_sync::<IntExpr>();
        assert_send_sync::<IntBox>();
    }
}
