//! Boolean predicates of the query language.

use crate::{CmpOp, EvalError, IntBox, IntExpr, Point, TriBool};
use std::fmt;
use std::sync::Arc;

/// A boolean predicate over the fields of a secret — the type of ANOSY queries.
///
/// Queries in the paper are Haskell functions `s -> Bool` restricted to linear arithmetic and
/// booleans (§5.1); [`Pred`] is the corresponding first-class syntax in this reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A comparison between two integer expressions.
    Cmp(CmpOp, Arc<IntExpr>, Arc<IntExpr>),
    /// Logical negation.
    Not(Arc<Pred>),
    /// N-ary conjunction (`true` when empty).
    And(Vec<Pred>),
    /// N-ary disjunction (`false` when empty).
    Or(Vec<Pred>),
    /// Implication.
    Implies(Arc<Pred>, Arc<Pred>),
    /// Bi-implication.
    Iff(Arc<Pred>, Arc<Pred>),
}

impl Pred {
    /// A comparison predicate `lhs op rhs`.
    pub fn cmp(op: CmpOp, lhs: IntExpr, rhs: IntExpr) -> Pred {
        Pred::Cmp(op, Arc::new(lhs), Arc::new(rhs))
    }

    /// N-ary conjunction.
    pub fn and(preds: Vec<Pred>) -> Pred {
        Pred::And(preds)
    }

    /// N-ary disjunction.
    pub fn or(preds: Vec<Pred>) -> Pred {
        Pred::Or(preds)
    }

    /// Logical negation.
    pub fn negate(self) -> Pred {
        Pred::Not(Arc::new(self))
    }

    /// Implication `self => other`.
    pub fn implies(self, other: Pred) -> Pred {
        Pred::Implies(Arc::new(self), Arc::new(other))
    }

    /// Bi-implication `self <=> other`.
    pub fn iff(self, other: Pred) -> Pred {
        Pred::Iff(Arc::new(self), Arc::new(other))
    }

    /// Conjunction of `self` with `other` (convenience for chaining).
    pub fn and_also(self, other: Pred) -> Pred {
        match self {
            Pred::And(mut ps) => {
                ps.push(other);
                Pred::And(ps)
            }
            p => Pred::And(vec![p, other]),
        }
    }

    /// Disjunction of `self` with `other` (convenience for chaining).
    pub fn or_else(self, other: Pred) -> Pred {
        match self {
            Pred::Or(mut ps) => {
                ps.push(other);
                Pred::Or(ps)
            }
            p => Pred::Or(vec![p, other]),
        }
    }

    /// Evaluates the predicate on a concrete point.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`]s from the underlying integer expressions.
    pub fn eval(&self, point: &Point) -> Result<bool, EvalError> {
        match self {
            Pred::True => Ok(true),
            Pred::False => Ok(false),
            Pred::Cmp(op, a, b) => Ok(op.apply(a.eval(point)?, b.eval(point)?)),
            Pred::Not(p) => Ok(!p.eval(point)?),
            Pred::And(ps) => {
                for p in ps {
                    if !p.eval(point)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Pred::Or(ps) => {
                for p in ps {
                    if p.eval(point)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Pred::Implies(a, b) => Ok(!a.eval(point)? || b.eval(point)?),
            Pred::Iff(a, b) => Ok(a.eval(point)? == b.eval(point)?),
        }
    }

    /// Evaluates the predicate over every point of a box at once, using interval arithmetic and
    /// Kleene three-valued logic.
    ///
    /// The result is sound: [`TriBool::True`] (resp. [`TriBool::False`]) means every point of the
    /// box satisfies (resp. falsifies) the predicate. [`TriBool::Unknown`] carries no guarantee.
    pub fn eval_abstract(&self, boxed: &IntBox) -> TriBool {
        match self {
            Pred::True => TriBool::True,
            Pred::False => TriBool::False,
            Pred::Cmp(op, a, b) => {
                let ra = a.eval_abstract(boxed);
                let rb = b.eval_abstract(boxed);
                match op {
                    CmpOp::Le => ra.le(rb),
                    CmpOp::Lt => ra.lt(rb),
                    CmpOp::Ge => rb.le(ra),
                    CmpOp::Gt => rb.lt(ra),
                    CmpOp::Eq => ra.eq_tri(rb),
                    CmpOp::Ne => ra.eq_tri(rb).negate(),
                }
            }
            Pred::Not(p) => p.eval_abstract(boxed).negate(),
            Pred::And(ps) => {
                ps.iter().fold(TriBool::True, |acc, p| acc.and(p.eval_abstract(boxed)))
            }
            Pred::Or(ps) => ps.iter().fold(TriBool::False, |acc, p| acc.or(p.eval_abstract(boxed))),
            Pred::Implies(a, b) => a.eval_abstract(boxed).implies(b.eval_abstract(boxed)),
            Pred::Iff(a, b) => {
                let ra = a.eval_abstract(boxed);
                let rb = b.eval_abstract(boxed);
                ra.implies(rb).and(rb.implies(ra))
            }
        }
    }

    /// Collects the indices of every secret field mentioned by the predicate into `out`.
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Pred::Not(p) => p.collect_vars(out),
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            Pred::Implies(a, b) | Pred::Iff(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Returns the free variables of the predicate, sorted and deduplicated.
    pub fn free_vars(&self) -> Vec<usize> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Structural size of the predicate (number of AST nodes); useful for test generators and
    /// complexity reporting.
    pub fn node_count(&self) -> usize {
        fn expr_nodes(e: &IntExpr) -> usize {
            match e {
                IntExpr::Const(_) | IntExpr::Var(_) => 1,
                IntExpr::Add(a, b)
                | IntExpr::Sub(a, b)
                | IntExpr::Min(a, b)
                | IntExpr::Max(a, b) => 1 + expr_nodes(a) + expr_nodes(b),
                IntExpr::Neg(a) | IntExpr::Scale(_, a) | IntExpr::Abs(a) => 1 + expr_nodes(a),
                IntExpr::Ite(c, t, e) => 1 + c.node_count() + expr_nodes(t) + expr_nodes(e),
            }
        }
        match self {
            Pred::True | Pred::False => 1,
            Pred::Cmp(_, a, b) => 1 + expr_nodes(a) + expr_nodes(b),
            Pred::Not(p) => 1 + p.node_count(),
            Pred::And(ps) | Pred::Or(ps) => 1 + ps.iter().map(Pred::node_count).sum::<usize>(),
            Pred::Implies(a, b) | Pred::Iff(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }
}

impl From<bool> for Pred {
    fn from(b: bool) -> Self {
        if b {
            Pred::True
        } else {
            Pred::False
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Pred::Not(p) => write!(f, "!({p})"),
            Pred::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Or(ps) => {
                if ps.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Implies(a, b) => write!(f, "({a} => {b})"),
            Pred::Iff(a, b) => write!(f, "({a} <=> {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Range;

    fn point(coords: &[i64]) -> Point {
        Point::new(coords.to_vec())
    }

    fn nearby(xo: i64, yo: i64) -> Pred {
        ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100)
    }

    #[test]
    fn constants_and_connectives() {
        let p = point(&[]);
        assert!(Pred::True.eval(&p).unwrap());
        assert!(!Pred::False.eval(&p).unwrap());
        assert!(Pred::and(vec![]).eval(&p).unwrap());
        assert!(!Pred::or(vec![]).eval(&p).unwrap());
        assert!(Pred::False.implies(Pred::False).eval(&p).unwrap());
        assert!(!Pred::True.implies(Pred::False).eval(&p).unwrap());
        assert!(Pred::True.iff(Pred::True).eval(&p).unwrap());
        assert!(!Pred::True.iff(Pred::False).eval(&p).unwrap());
        assert!(Pred::False.negate().eval(&p).unwrap());
    }

    #[test]
    fn chaining_builders_flatten() {
        let p = Pred::True.and_also(Pred::False).and_also(Pred::True);
        match &p {
            Pred::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        let q = Pred::False.or_else(Pred::True).or_else(Pred::False);
        match &q {
            Pred::Or(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn two_nearby_queries_pin_down_the_secret() {
        // §2.1: nearby (200,200) && nearby (400,200) forces the secret to be (300,200).
        let q1 = nearby(200, 200);
        let q2 = nearby(400, 200);
        let both = q1.and_also(q2);
        assert!(both.eval(&point(&[300, 200])).unwrap());
        // Any deviation breaks at least one of the two queries.
        for p in [[299, 200], [301, 200], [300, 199], [300, 201]] {
            assert!(!both.eval(&point(&p)).unwrap(), "{p:?} unexpectedly satisfies both");
        }
    }

    #[test]
    fn abstract_evaluation_is_sound_on_small_boxes() {
        let q = nearby(200, 200);
        let cases = [
            IntBox::new(vec![Range::new(180, 220), Range::new(180, 220)]), // inside
            IntBox::new(vec![Range::new(0, 50), Range::new(0, 50)]),       // outside
            IntBox::new(vec![Range::new(100, 350), Range::new(100, 350)]), // straddles
        ];
        for boxed in cases {
            let abs = q.eval_abstract(&boxed);
            if let Some(expected) = abs.to_option() {
                for p in boxed.points() {
                    assert_eq!(q.eval(&p).unwrap(), expected, "unsound at {p}");
                }
            }
        }
    }

    #[test]
    fn abstract_evaluation_decides_definite_boxes() {
        let q = nearby(200, 200);
        let inside = IntBox::new(vec![Range::new(190, 210), Range::new(190, 210)]);
        assert_eq!(q.eval_abstract(&inside), TriBool::True);
        let outside = IntBox::new(vec![Range::new(0, 20), Range::new(0, 20)]);
        assert_eq!(q.eval_abstract(&outside), TriBool::False);
    }

    #[test]
    fn free_vars_sorted_and_unique() {
        let q = (IntExpr::var(3) + IntExpr::var(1)).le(IntExpr::var(3));
        assert_eq!(q.free_vars(), vec![1, 3]);
        assert_eq!(Pred::True.free_vars(), Vec::<usize>::new());
    }

    #[test]
    fn node_count_counts_ast_nodes() {
        assert_eq!(Pred::True.node_count(), 1);
        let q = IntExpr::var(0).le(5);
        assert_eq!(q.node_count(), 3);
        assert!(nearby(200, 200).node_count() > 5);
    }

    #[test]
    fn display_round_trips_conceptually() {
        let q = IntExpr::var(0).le(5).and_also(IntExpr::var(1).gt(2));
        let s = q.to_string();
        assert!(s.contains("<="));
        assert!(s.contains("&&"));
        assert_eq!(Pred::and(vec![]).to_string(), "true");
        assert_eq!(Pred::or(vec![]).to_string(), "false");
    }
}
