//! A small surface syntax for queries, used by examples, tests and report binaries.
//!
//! Grammar (ASCII, whitespace insensitive):
//!
//! ```text
//! pred    := or
//! or      := and ( "||" and )*
//! and     := not ( "&&" not )*
//! not     := "!" not | atom
//! atom    := "true" | "false" | "(" pred ")" | cmp
//! cmp     := expr ( "==" | "!=" | "<=" | "<" | ">=" | ">" ) expr
//! expr    := term ( ("+" | "-") term )*
//! term    := factor ( "*" factor )*            // at least one factor must be a literal
//! factor  := integer | ident | "-" factor | "abs" "(" expr ")"
//!          | "min" "(" expr "," expr ")" | "max" "(" expr "," expr ")" | "(" expr ")"
//! ```
//!
//! Identifiers are resolved against a [`SecretLayout`] when one is supplied to
//! [`parse_pred_with_layout`]; with [`parse_pred`] the variables `v0`, `v1`, ... refer to field
//! indices directly.

use crate::{CmpOp, IntExpr, ParseError, Pred, SecretLayout};

/// Parses a predicate whose variables are written positionally as `v0`, `v1`, ...
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
pub fn parse_pred(input: &str) -> Result<Pred, ParseError> {
    Parser::new(input, None).parse()
}

/// Parses a predicate whose variables are the field names of `layout`.
///
/// # Errors
///
/// Returns a [`ParseError`] if the syntax is invalid or an identifier is not a field of the
/// layout.
pub fn parse_pred_with_layout(input: &str, layout: &SecretLayout) -> Result<Pred, ParseError> {
    Parser::new(input, Some(layout)).parse()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    layout: Option<&'a SecretLayout>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, layout: Option<&'a SecretLayout>) -> Self {
        Parser { input: input.as_bytes(), pos: 0, layout }
    }

    fn parse(mut self) -> Result<Pred, ParseError> {
        let pred = self.pred()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(pred)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let bytes = kw.as_bytes();
        if self.input[self.pos..].starts_with(bytes) {
            let after = self.pos + bytes.len();
            let boundary =
                self.input.get(after).is_none_or(|c| !c.is_ascii_alphanumeric() && *c != b'_');
            if boundary {
                self.pos = after;
                return true;
            }
        }
        false
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut terms = vec![self.and_pred()?];
        while self.eat("||") {
            terms.push(self.and_pred()?);
        }
        Ok(if terms.len() == 1 { terms.pop().expect("len checked") } else { Pred::Or(terms) })
    }

    fn and_pred(&mut self) -> Result<Pred, ParseError> {
        let mut terms = vec![self.not_pred()?];
        while self.eat("&&") {
            terms.push(self.not_pred()?);
        }
        Ok(if terms.len() == 1 { terms.pop().expect("len checked") } else { Pred::And(terms) })
    }

    fn not_pred(&mut self) -> Result<Pred, ParseError> {
        // `!` but not `!=`
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b'!') && self.input.get(self.pos + 1) != Some(&b'=') {
            self.pos += 1;
            return Ok(self.not_pred()?.negate());
        }
        self.atom_pred()
    }

    fn atom_pred(&mut self) -> Result<Pred, ParseError> {
        if self.eat_keyword("true") {
            return Ok(Pred::True);
        }
        if self.eat_keyword("false") {
            return Ok(Pred::False);
        }
        // A parenthesis is ambiguous: it may open a predicate or an arithmetic expression.
        // Try a comparison first, and fall back to a parenthesized predicate.
        let saved = self.pos;
        match self.cmp_pred() {
            Ok(p) => Ok(p),
            Err(cmp_err) => {
                self.pos = saved;
                if self.peek() == Some(b'(') {
                    self.expect("(")?;
                    let inner = self.pred()?;
                    self.expect(")")?;
                    Ok(inner)
                } else {
                    Err(cmp_err)
                }
            }
        }
    }

    fn cmp_pred(&mut self) -> Result<Pred, ParseError> {
        let lhs = self.expr()?;
        self.skip_ws();
        let op = if self.eat("==") {
            CmpOp::Eq
        } else if self.eat("!=") {
            CmpOp::Ne
        } else if self.eat("<=") {
            CmpOp::Le
        } else if self.eat(">=") {
            CmpOp::Ge
        } else if self.eat("<") {
            CmpOp::Lt
        } else if self.eat(">") {
            CmpOp::Gt
        } else {
            return Err(self.error("expected comparison operator"));
        };
        let rhs = self.expr()?;
        Ok(Pred::cmp(op, lhs, rhs))
    }

    fn expr(&mut self) -> Result<IntExpr, ParseError> {
        let mut acc = self.term()?;
        loop {
            if self.eat("+") {
                acc = acc + self.term()?;
            } else {
                // `-` but not the start of a negative literal handled in factor
                self.skip_ws();
                if self.input.get(self.pos) == Some(&b'-') {
                    self.pos += 1;
                    acc = acc - self.term()?;
                } else {
                    break;
                }
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<IntExpr, ParseError> {
        let mut factors = vec![self.factor()?];
        while self.eat("*") {
            factors.push(self.factor()?);
        }
        if factors.len() == 1 {
            return Ok(factors.pop().expect("len checked"));
        }
        // Keep the language linear: a product must have at most one non-constant factor.
        let mut scale: i64 = 1;
        let mut variable: Option<IntExpr> = None;
        for f in factors {
            if let Some(c) = f.as_const() {
                scale = scale.saturating_mul(c);
            } else if variable.is_none() {
                variable = Some(f);
            } else {
                return Err(self.error("non-linear product of two variable expressions"));
            }
        }
        Ok(match variable {
            Some(v) => v.scale(scale),
            None => IntExpr::constant(scale),
        })
    }

    fn factor(&mut self) -> Result<IntExpr, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some(b'(') => {
                self.expect("(")?;
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() => self.integer(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                if self.eat_keyword("abs") {
                    self.expect("(")?;
                    let e = self.expr()?;
                    self.expect(")")?;
                    Ok(e.abs())
                } else if self.eat_keyword("min") {
                    self.expect("(")?;
                    let a = self.expr()?;
                    self.expect(",")?;
                    let b = self.expr()?;
                    self.expect(")")?;
                    Ok(a.min_expr(b))
                } else if self.eat_keyword("max") {
                    self.expect("(")?;
                    let a = self.expr()?;
                    self.expect(",")?;
                    let b = self.expr()?;
                    self.expect(")")?;
                    Ok(a.max_expr(b))
                } else {
                    self.identifier()
                }
            }
            _ => Err(self.error("expected an integer, identifier or parenthesized expression")),
        }
    }

    fn integer(&mut self) -> Result<IntExpr, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected an integer literal"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(IntExpr::constant)
            .map_err(|_| ParseError::new(start, "integer literal does not fit in i64"))
    }

    fn identifier(&mut self) -> Result<IntExpr, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected an identifier"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii identifier");
        if let Some(layout) = self.layout {
            layout
                .index_of(name)
                .map(IntExpr::var)
                .ok_or_else(|| ParseError::new(start, format!("unknown field `{name}`")))
        } else if let Some(idx) = name.strip_prefix('v').and_then(|s| s.parse::<usize>().ok()) {
            Ok(IntExpr::var(idx))
        } else {
            Err(ParseError::new(
                start,
                format!("unknown variable `{name}` (use v0, v1, ... or supply a layout)"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn loc_layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    #[test]
    fn parses_the_nearby_query() {
        let layout = loc_layout();
        let q = parse_pred_with_layout("abs(x - 200) + abs(y - 200) <= 100", &layout).unwrap();
        assert!(q.eval(&Point::new(vec![300, 200])).unwrap());
        assert!(!q.eval(&Point::new(vec![0, 0])).unwrap());
    }

    #[test]
    fn parses_positional_variables() {
        let q = parse_pred("v0 + v1 >= 10 && v0 < 4").unwrap();
        assert!(q.eval(&Point::new(vec![3, 8])).unwrap());
        assert!(!q.eval(&Point::new(vec![5, 8])).unwrap());
    }

    #[test]
    fn parses_boolean_structure_with_precedence() {
        let q = parse_pred("v0 == 1 || v0 == 2 && v1 == 3").unwrap();
        // `&&` binds tighter than `||`.
        assert!(q.eval(&Point::new(vec![1, 0])).unwrap());
        assert!(q.eval(&Point::new(vec![2, 3])).unwrap());
        assert!(!q.eval(&Point::new(vec![2, 4])).unwrap());
    }

    #[test]
    fn parses_negation_and_parenthesized_predicates() {
        let q = parse_pred("!(v0 <= 3) && (v1 == 0 || v1 == 1)").unwrap();
        assert!(q.eval(&Point::new(vec![4, 1])).unwrap());
        assert!(!q.eval(&Point::new(vec![3, 1])).unwrap());
        assert!(!q.eval(&Point::new(vec![4, 2])).unwrap());
    }

    #[test]
    fn parses_min_max_scale_and_unary_minus() {
        let q = parse_pred("min(v0, v1) >= 2 * v0 - 6 && max(v0, -v1) > 0").unwrap();
        assert!(q.eval(&Point::new(vec![3, 2])).unwrap());
        let r = parse_pred("3 * 4 == 12").unwrap();
        assert!(r.eval(&Point::new(vec![])).unwrap());
    }

    #[test]
    fn parses_true_false_literals() {
        assert_eq!(parse_pred("true").unwrap(), Pred::True);
        assert_eq!(parse_pred("false || true").unwrap(), Pred::Or(vec![Pred::False, Pred::True]));
    }

    #[test]
    fn rejects_unknown_fields_and_trailing_garbage() {
        let layout = loc_layout();
        assert!(parse_pred_with_layout("z <= 3", &layout).is_err());
        assert!(parse_pred("v0 <= 3 extra").is_err());
        assert!(parse_pred("foo <= 3").is_err());
    }

    #[test]
    fn rejects_nonlinear_products() {
        let err = parse_pred("v0 * v1 <= 3").unwrap_err();
        assert!(err.message.contains("non-linear"));
    }

    #[test]
    fn rejects_malformed_comparisons() {
        assert!(parse_pred("v0 <").is_err());
        assert!(parse_pred("<= 3").is_err());
        assert!(parse_pred("v0 ~ 3").is_err());
        assert!(parse_pred("").is_err());
    }

    #[test]
    fn ne_is_not_parsed_as_negation() {
        let q = parse_pred("v0 != 3").unwrap();
        assert!(q.eval(&Point::new(vec![4])).unwrap());
        assert!(!q.eval(&Point::new(vec![3])).unwrap());
    }

    #[test]
    fn huge_literal_is_rejected() {
        assert!(parse_pred("v0 <= 99999999999999999999999").is_err());
    }
}
