//! Secret layouts: the declared, bounded secret space a query ranges over.

use crate::{IntBox, Point, Range};
use std::fmt;

/// A single named field of a secret, together with its declared bounds.
///
/// ANOSY secrets are products of bounded integers (or enum/boolean fields encoded as integers,
/// §4.3); each field carries the bounds that define the global secret space, e.g. the 400×400
/// space of the location example or the bounds Mardziel et al. declare for each benchmark.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldSpec {
    name: String,
    lo: i64,
    hi: i64,
}

impl FieldSpec {
    /// Creates a field with the inclusive bounds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "field bounds must satisfy lo <= hi");
        FieldSpec { name: name.into(), lo, hi }
    }

    /// The field's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inclusive lower bound.
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Inclusive upper bound.
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// The field's bounds as a [`Range`].
    pub fn range(&self) -> Range {
        Range::new(self.lo, self.hi)
    }

    /// Number of admissible values for this field.
    pub fn cardinality(&self) -> u128 {
        self.range().count()
    }
}

impl fmt::Display for FieldSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}, {}]", self.name, self.lo, self.hi)
    }
}

/// The layout of a secret type: an ordered list of named, bounded integer fields.
///
/// The layout plays the role of the Haskell secret data type (`UserLoc`, the benchmark record
/// types, ...) plus the bounds that the paper inherits from Mardziel et al.'s benchmark suite.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SecretLayout {
    fields: Vec<FieldSpec>,
}

impl SecretLayout {
    /// Creates a layout directly from field specifications.
    pub fn new(fields: Vec<FieldSpec>) -> Self {
        SecretLayout { fields }
    }

    /// Starts building a layout field by field.
    pub fn builder() -> SecretLayoutBuilder {
        SecretLayoutBuilder::default()
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// The field at `index`, if it exists.
    pub fn field(&self, index: usize) -> Option<&FieldSpec> {
        self.fields.get(index)
    }

    /// Resolves a field name to its index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The full secret space as a box (the `⊤` knowledge of the paper).
    pub fn space(&self) -> IntBox {
        IntBox::new(self.fields.iter().map(FieldSpec::range).collect())
    }

    /// Total number of possible secrets.
    pub fn space_size(&self) -> u128 {
        self.space().count()
    }

    /// Returns `true` if the point respects arity and every field's bounds.
    pub fn admits(&self, point: &Point) -> bool {
        point.arity() == self.arity() && self.space().contains_point(point)
    }

    /// Clamps an arbitrary point of the right arity into the secret space.
    pub fn clamp(&self, point: &Point) -> Point {
        self.fields.iter().zip(point.iter()).map(|(f, v)| v.clamp(f.lo, f.hi)).collect()
    }
}

impl fmt::Display for SecretLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`SecretLayout`].
#[derive(Debug, Default, Clone)]
pub struct SecretLayoutBuilder {
    fields: Vec<FieldSpec>,
}

impl SecretLayoutBuilder {
    /// Adds a bounded integer field.
    pub fn field(mut self, name: impl Into<String>, lo: i64, hi: i64) -> Self {
        self.fields.push(FieldSpec::new(name, lo, hi));
        self
    }

    /// Adds a boolean field encoded as `[0, 1]`.
    pub fn bool_field(self, name: impl Into<String>) -> Self {
        self.field(name, 0, 1)
    }

    /// Adds an enum field with `variants` values encoded as `[0, variants - 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `variants == 0`.
    pub fn enum_field(self, name: impl Into<String>, variants: u32) -> Self {
        assert!(variants > 0, "enum fields need at least one variant");
        self.field(name, 0, i64::from(variants) - 1)
    }

    /// Finalizes the layout.
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name (names must be unique so the parser and reports are
    /// unambiguous).
    pub fn build(self) -> SecretLayout {
        for (i, f) in self.fields.iter().enumerate() {
            for g in &self.fields[i + 1..] {
                assert!(f.name != g.name, "duplicate field name: {}", f.name);
            }
        }
        SecretLayout::new(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user_loc() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    #[test]
    fn arity_space_and_size() {
        let l = user_loc();
        assert_eq!(l.arity(), 2);
        assert_eq!(l.space_size(), 401 * 401);
        assert_eq!(l.space().dim(0), Range::new(0, 400));
    }

    #[test]
    fn field_lookup_by_name_and_index() {
        let l = user_loc();
        assert_eq!(l.index_of("y"), Some(1));
        assert_eq!(l.index_of("z"), None);
        assert_eq!(l.field(0).unwrap().name(), "x");
        assert!(l.field(2).is_none());
        assert_eq!(l.field(1).unwrap().cardinality(), 401);
    }

    #[test]
    fn admits_checks_bounds_and_arity() {
        let l = user_loc();
        assert!(l.admits(&Point::new(vec![300, 200])));
        assert!(!l.admits(&Point::new(vec![401, 0])));
        assert!(!l.admits(&Point::new(vec![1, 2, 3])));
    }

    #[test]
    fn clamp_projects_into_space() {
        let l = user_loc();
        assert_eq!(l.clamp(&Point::new(vec![-10, 900])), Point::new(vec![0, 400]));
        assert_eq!(l.clamp(&Point::new(vec![7, 8])), Point::new(vec![7, 8]));
    }

    #[test]
    fn bool_and_enum_fields() {
        let l = SecretLayout::builder()
            .bool_field("engaged")
            .enum_field("status", 4)
            .field("byear", 1900, 2010)
            .build();
        assert_eq!(l.space_size(), 2 * 4 * 111);
        assert_eq!(l.field(1).unwrap().hi(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_field_names_are_rejected() {
        let _ = SecretLayout::builder().field("x", 0, 1).field("x", 0, 1).build();
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_bounds_are_rejected() {
        let _ = FieldSpec::new("x", 5, 4);
    }

    #[test]
    fn display_mentions_fields() {
        let l = user_loc();
        let s = l.to_string();
        assert!(s.contains("x: [0, 400]"));
        assert!(s.contains("y: [0, 400]"));
    }
}
