//! Error types for evaluation and parsing.

use std::fmt;

/// Error raised when evaluating an expression or predicate on a concrete [`crate::Point`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable index was out of bounds for the point being evaluated.
    UnknownVariable {
        /// The out-of-range variable index.
        index: usize,
        /// The arity of the point the expression was evaluated against.
        arity: usize,
    },
    /// An arithmetic operation overflowed 64-bit signed integers.
    Overflow {
        /// Human readable description of the operation that overflowed.
        operation: &'static str,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable { index, arity } => {
                write!(f, "variable v{index} is out of range for a point of arity {arity}")
            }
            EvalError::Overflow { operation } => {
                write!(f, "arithmetic overflow during {operation}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Error raised by the surface-syntax parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError { offset, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_error_display_mentions_variable() {
        let err = EvalError::UnknownVariable { index: 3, arity: 2 };
        assert!(err.to_string().contains("v3"));
        assert!(err.to_string().contains("arity 2"));
    }

    #[test]
    fn overflow_display_mentions_operation() {
        let err = EvalError::Overflow { operation: "addition" };
        assert!(err.to_string().contains("addition"));
    }

    #[test]
    fn parse_error_display_contains_offset() {
        let err = ParseError::new(7, "unexpected token");
        assert!(err.to_string().contains("offset 7"));
        assert!(err.to_string().contains("unexpected token"));
    }
}
