//! The ANOSY query language.
//!
//! ANOSY analyses *queries*: boolean functions over a secret made of finitely many bounded
//! integer fields (see §5.1 of the paper). This crate provides the abstract syntax for that
//! language together with everything the rest of the system needs to reason about it:
//!
//! * [`IntExpr`] and [`Pred`] — linear integer arithmetic expressions and boolean predicates,
//!   including `abs`, `min`, `max` and if-then-else, mirroring the fragment the paper translates
//!   to Z3 (§2.3, §5.1);
//! * [`SecretLayout`] — the declared secret space (field names and per-field bounds), i.e. the
//!   bounded product of integers every benchmark in §6 ranges over;
//! * concrete evaluation ([`Pred::eval`], [`IntExpr::eval`]) on [`Point`]s;
//! * abstract (interval, three-valued) evaluation ([`Pred::eval_abstract`]) on [`IntBox`]es,
//!   which is the pruning engine used by the `anosy-solver` crate;
//! * normal forms ([`simplify_pred`], constant folding) and a small surface parser so examples
//!   and tests can write queries as text;
//! * a hash-consed [`TermStore`] interning both syntaxes behind copyable [`ExprId`]/[`PredId`]
//!   handles with O(1) equality/hashing, structural sharing and store-resident memo tables for
//!   simplification, free variables and interval range analysis — the representation every hot
//!   consumer (solver, synthesizer, verifier, sessions) works on. The tree types remain the
//!   construction/display layer; see the [`store`] module docs for the migration story.
//!
//! # Example
//!
//! ```
//! use anosy_logic::{SecretLayout, Pred, IntExpr, Point};
//!
//! // The `UserLoc` secret from §2 of the paper: x and y in [0, 400].
//! let layout = SecretLayout::builder()
//!     .field("x", 0, 400)
//!     .field("y", 0, 400)
//!     .build();
//!
//! // nearby (200, 200): |x - 200| + |y - 200| <= 100
//! let x = IntExpr::var(0);
//! let y = IntExpr::var(1);
//! let nearby = ((x - 200).abs() + (y - 200).abs()).le(100);
//!
//! assert!(nearby.eval(&Point::new(vec![300, 200])).unwrap());
//! assert!(!nearby.eval(&Point::new(vec![0, 0])).unwrap());
//! assert_eq!(layout.arity(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod layout;
mod nnf;
mod parser;
mod point;
mod pred;
mod range;
pub mod store;
mod tribool;

pub use error::{EvalError, ParseError};
pub use expr::{CmpOp, IntExpr};
pub use layout::{FieldSpec, SecretLayout, SecretLayoutBuilder};
pub use nnf::{is_nnf, simplify_pred};
pub use parser::{parse_pred, parse_pred_with_layout};
pub use point::Point;
pub use pred::Pred;
pub use range::{IntBox, Range};
pub use store::{
    depth_bucket, suggested_min_memo_depth, ExprId, ExprNode, PredId, PredNode, PredShape,
    StoreStats, TermStore, BOX_MEMO_DEPTH_BUCKETS, BOX_MEMO_DEPTH_LABELS, BOX_MEMO_MIN_DEPTH,
};
pub use tribool::TriBool;
