//! Integer expressions of the query language.

use crate::{EvalError, IntBox, Point, Range};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

/// Comparison operators between integer expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to concrete values.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The operator that holds exactly when `self` does not (`<` ↔ `>=`, etc.).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with its arguments swapped (`a op b` ↔ `b op.swap() a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An integer expression over the fields of a secret.
///
/// The language mirrors the fragment ANOSY accepts (§5.1): linear arithmetic (addition,
/// subtraction, negation, multiplication by constants) extended with `abs`, `min`, `max` and
/// arithmetic if-then-else. Sub-expressions are shared via [`Arc`] so that queries are cheap to
/// clone when stored in registries and session state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntExpr {
    /// An integer literal.
    Const(i64),
    /// The secret field with the given index (see [`crate::SecretLayout`]).
    Var(usize),
    /// Sum of two expressions.
    Add(Arc<IntExpr>, Arc<IntExpr>),
    /// Difference of two expressions.
    Sub(Arc<IntExpr>, Arc<IntExpr>),
    /// Negation.
    Neg(Arc<IntExpr>),
    /// Multiplication by a constant factor (keeps the language linear).
    Scale(i64, Arc<IntExpr>),
    /// Absolute value.
    Abs(Arc<IntExpr>),
    /// Binary minimum.
    Min(Arc<IntExpr>, Arc<IntExpr>),
    /// Binary maximum.
    Max(Arc<IntExpr>, Arc<IntExpr>),
    /// Arithmetic if-then-else over a predicate condition.
    Ite(Arc<crate::Pred>, Arc<IntExpr>, Arc<IntExpr>),
}

impl IntExpr {
    /// The secret field with index `index`.
    pub fn var(index: usize) -> IntExpr {
        IntExpr::Var(index)
    }

    /// An integer constant.
    pub fn constant(value: i64) -> IntExpr {
        IntExpr::Const(value)
    }

    /// Absolute value of this expression.
    pub fn abs(self) -> IntExpr {
        IntExpr::Abs(Arc::new(self))
    }

    /// Minimum of this expression and `other`.
    pub fn min_expr(self, other: impl Into<IntExpr>) -> IntExpr {
        IntExpr::Min(Arc::new(self), Arc::new(other.into()))
    }

    /// Maximum of this expression and `other`.
    pub fn max_expr(self, other: impl Into<IntExpr>) -> IntExpr {
        IntExpr::Max(Arc::new(self), Arc::new(other.into()))
    }

    /// Multiplication by a constant factor.
    pub fn scale(self, factor: i64) -> IntExpr {
        IntExpr::Scale(factor, Arc::new(self))
    }

    /// If-then-else selecting between `then_branch` and `else_branch` based on `cond`.
    pub fn ite(cond: crate::Pred, then_branch: IntExpr, else_branch: IntExpr) -> IntExpr {
        IntExpr::Ite(Arc::new(cond), Arc::new(then_branch), Arc::new(else_branch))
    }

    /// The comparison `self == other` as a predicate.
    pub fn eq(self, other: impl Into<IntExpr>) -> crate::Pred {
        crate::Pred::cmp(CmpOp::Eq, self, other.into())
    }

    /// The comparison `self != other` as a predicate.
    pub fn ne(self, other: impl Into<IntExpr>) -> crate::Pred {
        crate::Pred::cmp(CmpOp::Ne, self, other.into())
    }

    /// The comparison `self < other` as a predicate.
    pub fn lt(self, other: impl Into<IntExpr>) -> crate::Pred {
        crate::Pred::cmp(CmpOp::Lt, self, other.into())
    }

    /// The comparison `self <= other` as a predicate.
    pub fn le(self, other: impl Into<IntExpr>) -> crate::Pred {
        crate::Pred::cmp(CmpOp::Le, self, other.into())
    }

    /// The comparison `self > other` as a predicate.
    pub fn gt(self, other: impl Into<IntExpr>) -> crate::Pred {
        crate::Pred::cmp(CmpOp::Gt, self, other.into())
    }

    /// The comparison `self >= other` as a predicate.
    pub fn ge(self, other: impl Into<IntExpr>) -> crate::Pred {
        crate::Pred::cmp(CmpOp::Ge, self, other.into())
    }

    /// The comparison `lo <= self && self <= hi` as a predicate.
    pub fn between(self, lo: i64, hi: i64) -> crate::Pred {
        crate::Pred::and(vec![self.clone().ge(lo), self.le(hi)])
    }

    /// The predicate `self == c1 || self == c2 || ...` (point-wise membership, §6.1).
    pub fn one_of(self, values: impl IntoIterator<Item = i64>) -> crate::Pred {
        crate::Pred::or(values.into_iter().map(|v| self.clone().eq(v)).collect())
    }

    /// Evaluates the expression on a concrete point.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnknownVariable`] if the expression mentions a field the point does
    /// not have, and [`EvalError::Overflow`] if 64-bit arithmetic overflows.
    pub fn eval(&self, point: &Point) -> Result<i64, EvalError> {
        match self {
            IntExpr::Const(c) => Ok(*c),
            IntExpr::Var(i) => {
                point.get(*i).ok_or(EvalError::UnknownVariable { index: *i, arity: point.arity() })
            }
            IntExpr::Add(a, b) => a
                .eval(point)?
                .checked_add(b.eval(point)?)
                .ok_or(EvalError::Overflow { operation: "addition" }),
            IntExpr::Sub(a, b) => a
                .eval(point)?
                .checked_sub(b.eval(point)?)
                .ok_or(EvalError::Overflow { operation: "subtraction" }),
            IntExpr::Neg(a) => {
                a.eval(point)?.checked_neg().ok_or(EvalError::Overflow { operation: "negation" })
            }
            IntExpr::Scale(k, a) => {
                a.eval(point)?.checked_mul(*k).ok_or(EvalError::Overflow { operation: "scaling" })
            }
            IntExpr::Abs(a) => a
                .eval(point)?
                .checked_abs()
                .ok_or(EvalError::Overflow { operation: "absolute value" }),
            IntExpr::Min(a, b) => Ok(a.eval(point)?.min(b.eval(point)?)),
            IntExpr::Max(a, b) => Ok(a.eval(point)?.max(b.eval(point)?)),
            IntExpr::Ite(c, t, e) => {
                if c.eval(point)? {
                    t.eval(point)
                } else {
                    e.eval(point)
                }
            }
        }
    }

    /// Evaluates the expression over a box of points using interval arithmetic, returning a range
    /// guaranteed to contain every concrete result.
    pub fn eval_abstract(&self, boxed: &IntBox) -> Range {
        match self {
            IntExpr::Const(c) => Range::singleton(*c),
            IntExpr::Var(i) => {
                if *i < boxed.arity() {
                    boxed.dim(*i)
                } else {
                    Range::FULL
                }
            }
            IntExpr::Add(a, b) => a.eval_abstract(boxed).add(b.eval_abstract(boxed)),
            IntExpr::Sub(a, b) => a.eval_abstract(boxed).sub(b.eval_abstract(boxed)),
            IntExpr::Neg(a) => a.eval_abstract(boxed).neg(),
            IntExpr::Scale(k, a) => a.eval_abstract(boxed).mul_const(*k),
            IntExpr::Abs(a) => a.eval_abstract(boxed).abs(),
            IntExpr::Min(a, b) => a.eval_abstract(boxed).min(b.eval_abstract(boxed)),
            IntExpr::Max(a, b) => a.eval_abstract(boxed).max(b.eval_abstract(boxed)),
            IntExpr::Ite(c, t, e) => {
                use crate::TriBool;
                match c.eval_abstract(boxed) {
                    TriBool::True => t.eval_abstract(boxed),
                    TriBool::False => e.eval_abstract(boxed),
                    TriBool::Unknown => t.eval_abstract(boxed).hull(e.eval_abstract(boxed)),
                }
            }
        }
    }

    /// Collects the indices of every secret field mentioned by the expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            IntExpr::Const(_) => {}
            IntExpr::Var(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            IntExpr::Add(a, b) | IntExpr::Sub(a, b) | IntExpr::Min(a, b) | IntExpr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            IntExpr::Neg(a) | IntExpr::Scale(_, a) | IntExpr::Abs(a) => a.collect_vars(out),
            IntExpr::Ite(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// Returns the constant value of the expression if it contains no variables and folds to a
    /// single literal.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            IntExpr::Const(c) => Some(*c),
            _ => None,
        }
    }
}

impl From<i64> for IntExpr {
    fn from(v: i64) -> Self {
        IntExpr::Const(v)
    }
}

impl From<i32> for IntExpr {
    fn from(v: i32) -> Self {
        IntExpr::Const(v as i64)
    }
}

impl Add for IntExpr {
    type Output = IntExpr;
    fn add(self, rhs: IntExpr) -> IntExpr {
        IntExpr::Add(Arc::new(self), Arc::new(rhs))
    }
}

impl Add<i64> for IntExpr {
    type Output = IntExpr;
    fn add(self, rhs: i64) -> IntExpr {
        self + IntExpr::Const(rhs)
    }
}

impl Sub for IntExpr {
    type Output = IntExpr;
    fn sub(self, rhs: IntExpr) -> IntExpr {
        IntExpr::Sub(Arc::new(self), Arc::new(rhs))
    }
}

impl Sub<i64> for IntExpr {
    type Output = IntExpr;
    fn sub(self, rhs: i64) -> IntExpr {
        self - IntExpr::Const(rhs)
    }
}

impl Neg for IntExpr {
    type Output = IntExpr;
    fn neg(self) -> IntExpr {
        IntExpr::Neg(Arc::new(self))
    }
}

impl Mul<i64> for IntExpr {
    type Output = IntExpr;
    fn mul(self, rhs: i64) -> IntExpr {
        IntExpr::Scale(rhs, Arc::new(self))
    }
}

impl fmt::Display for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntExpr::Const(c) => write!(f, "{c}"),
            IntExpr::Var(i) => write!(f, "v{i}"),
            IntExpr::Add(a, b) => write!(f, "({a} + {b})"),
            IntExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            IntExpr::Neg(a) => write!(f, "(-{a})"),
            IntExpr::Scale(k, a) => write!(f, "({k} * {a})"),
            IntExpr::Abs(a) => write!(f, "abs({a})"),
            IntExpr::Min(a, b) => write!(f, "min({a}, {b})"),
            IntExpr::Max(a, b) => write!(f, "max({a}, {b})"),
            IntExpr::Ite(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pred;

    fn point(coords: &[i64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn cmp_op_apply_and_negate() {
        assert!(CmpOp::Le.apply(3, 3));
        assert!(!CmpOp::Lt.apply(3, 3));
        assert!(CmpOp::Ne.apply(1, 2));
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.negate().apply(a, b), !op.apply(a, b));
                assert_eq!(op.swap().apply(b, a), op.apply(a, b));
            }
        }
    }

    #[test]
    fn nearby_query_evaluates_like_the_paper() {
        // nearby (200, 200): |x - 200| + |y - 200| <= 100 (§2.1)
        let q = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        assert!(q.eval(&point(&[300, 200])).unwrap());
        assert!(q.eval(&point(&[200, 300])).unwrap());
        assert!(!q.eval(&point(&[301, 200])).unwrap());
        assert!(!q.eval(&point(&[0, 0])).unwrap());
    }

    #[test]
    fn arithmetic_evaluation() {
        let e = (IntExpr::var(0) * 3 + IntExpr::var(1)) - 7;
        assert_eq!(e.eval(&point(&[2, 10])).unwrap(), 9);
        let m = IntExpr::var(0).min_expr(IntExpr::var(1));
        assert_eq!(m.eval(&point(&[4, -2])).unwrap(), -2);
        let x = IntExpr::var(0).max_expr(5);
        assert_eq!(x.eval(&point(&[3])).unwrap(), 5);
        let neg = -IntExpr::var(0);
        assert_eq!(neg.eval(&point(&[9])).unwrap(), -9);
    }

    #[test]
    fn ite_evaluation() {
        let cond = IntExpr::var(0).lt(0);
        let abs_by_hand = IntExpr::ite(cond, -IntExpr::var(0), IntExpr::var(0));
        assert_eq!(abs_by_hand.eval(&point(&[-5])).unwrap(), 5);
        assert_eq!(abs_by_hand.eval(&point(&[7])).unwrap(), 7);
    }

    #[test]
    fn unknown_variable_is_reported() {
        let e = IntExpr::var(2);
        assert_eq!(e.eval(&point(&[1, 2])), Err(EvalError::UnknownVariable { index: 2, arity: 2 }));
    }

    #[test]
    fn overflow_is_reported() {
        let e = IntExpr::constant(i64::MAX) + 1;
        assert_eq!(e.eval(&point(&[])), Err(EvalError::Overflow { operation: "addition" }));
        let n = -IntExpr::constant(i64::MIN);
        assert!(n.eval(&point(&[])).is_err());
    }

    #[test]
    fn abstract_evaluation_bounds_concrete_results() {
        let e = (IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs();
        let boxed = IntBox::new(vec![Range::new(150, 250), Range::new(190, 210)]);
        let r = e.eval_abstract(&boxed);
        for p in boxed.points() {
            let v = e.eval(&p).unwrap();
            assert!(r.contains(v), "{v} not in {r}");
        }
    }

    #[test]
    fn abstract_ite_hulls_branches() {
        let cond = IntExpr::var(0).lt(5);
        let e = IntExpr::ite(cond, IntExpr::constant(1), IntExpr::constant(100));
        let unknown_box = IntBox::new(vec![Range::new(0, 10)]);
        let r = e.eval_abstract(&unknown_box);
        assert!(r.contains(1) && r.contains(100));
        let true_box = IntBox::new(vec![Range::new(0, 4)]);
        assert_eq!(e.eval_abstract(&true_box), Range::singleton(1));
    }

    #[test]
    fn variable_collection_deduplicates() {
        let e = IntExpr::var(1) + IntExpr::var(0) + IntExpr::var(1);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        vars.sort_unstable();
        assert_eq!(vars, vec![0, 1]);
    }

    #[test]
    fn between_and_one_of_builders() {
        let b = IntExpr::var(0).between(10, 20);
        assert!(b.eval(&point(&[15])).unwrap());
        assert!(!b.eval(&point(&[9])).unwrap());
        let m = IntExpr::var(0).one_of([3, 5, 9]);
        assert!(m.eval(&point(&[5])).unwrap());
        assert!(!m.eval(&point(&[4])).unwrap());
        assert_eq!(IntExpr::var(0).one_of([]), Pred::or(vec![]));
    }

    #[test]
    fn display_is_readable() {
        let e = (IntExpr::var(0) - 200).abs();
        assert_eq!(e.to_string(), "abs((v0 - 200))");
    }
}
