//! Saturating interval arithmetic over `i64`, and axis-aligned boxes of such intervals.
//!
//! These are the *analysis* intervals used for pruning inside the solver. They are distinct from
//! the user-facing abstract-domain intervals in `anosy-domains` (which carry the knowledge
//! semantics of the paper); keeping the two separate keeps this crate dependency-free.

use crate::{Point, TriBool};
use std::fmt;

/// A non-empty closed interval `[lo, hi]` of `i64` values (`lo <= hi`), or the canonical empty
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Range {
    lo: i64,
    hi: i64,
    empty: bool,
}

fn clamp_i128(v: i128) -> i64 {
    if v > i64::MAX as i128 {
        i64::MAX
    } else if v < i64::MIN as i128 {
        i64::MIN
    } else {
        v as i64
    }
}

impl Range {
    /// The full `i64` range.
    pub const FULL: Range = Range { lo: i64::MIN, hi: i64::MAX, empty: false };

    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`; use [`Range::empty`] for the empty interval.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "Range::new requires lo <= hi (got {lo} > {hi})");
        Range { lo, hi, empty: false }
    }

    /// Creates a singleton interval `[v, v]`.
    pub fn singleton(v: i64) -> Self {
        Range::new(v, v)
    }

    /// The canonical empty interval.
    pub fn empty() -> Self {
        Range { lo: 1, hi: 0, empty: true }
    }

    /// Returns `true` if the interval contains no values.
    pub fn is_empty(self) -> bool {
        self.empty
    }

    /// Lower bound. Meaningless for empty intervals.
    pub fn lo(self) -> i64 {
        self.lo
    }

    /// Upper bound. Meaningless for empty intervals.
    pub fn hi(self) -> i64 {
        self.hi
    }

    /// Returns `true` if the interval contains a single value.
    pub fn is_singleton(self) -> bool {
        !self.empty && self.lo == self.hi
    }

    /// Number of integers in the interval, as `u128` to avoid overflow.
    pub fn count(self) -> u128 {
        if self.empty {
            0
        } else {
            (self.hi as i128 - self.lo as i128 + 1) as u128
        }
    }

    /// Returns `true` if `v` lies in the interval.
    pub fn contains(self, v: i64) -> bool {
        !self.empty && self.lo <= v && v <= self.hi
    }

    /// Returns `true` if `other` is fully contained in `self`.
    pub fn contains_range(self, other: Range) -> bool {
        other.empty || (!self.empty && self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Intersection of two intervals.
    pub fn intersect(self, other: Range) -> Range {
        if self.empty || other.empty {
            return Range::empty();
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Range::new(lo, hi)
        } else {
            Range::empty()
        }
    }

    /// Smallest interval containing both inputs (interval hull).
    pub fn hull(self, other: Range) -> Range {
        if self.empty {
            other
        } else if other.empty {
            self
        } else {
            Range::new(self.lo.min(other.lo), self.hi.max(other.hi))
        }
    }

    /// Interval addition (saturating at the `i64` limits).
    ///
    /// Deliberately an inherent method, not `std::ops::Add`: interval arithmetic is approximate
    /// (saturating, over-approximating), and the explicit call sites keep that visible.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Range) -> Range {
        if self.empty || other.empty {
            return Range::empty();
        }
        Range::new(
            clamp_i128(self.lo as i128 + other.lo as i128),
            clamp_i128(self.hi as i128 + other.hi as i128),
        )
    }

    /// Interval subtraction (saturating).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Range) -> Range {
        if self.empty || other.empty {
            return Range::empty();
        }
        Range::new(
            clamp_i128(self.lo as i128 - other.hi as i128),
            clamp_i128(self.hi as i128 - other.lo as i128),
        )
    }

    /// Interval negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Range {
        if self.empty {
            return Range::empty();
        }
        Range::new(clamp_i128(-(self.hi as i128)), clamp_i128(-(self.lo as i128)))
    }

    /// Multiplication by a constant (saturating).
    pub fn mul_const(self, k: i64) -> Range {
        if self.empty {
            return Range::empty();
        }
        let a = clamp_i128(self.lo as i128 * k as i128);
        let b = clamp_i128(self.hi as i128 * k as i128);
        Range::new(a.min(b), a.max(b))
    }

    /// General interval multiplication (saturating).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Range) -> Range {
        if self.empty || other.empty {
            return Range::empty();
        }
        let candidates = [
            self.lo as i128 * other.lo as i128,
            self.lo as i128 * other.hi as i128,
            self.hi as i128 * other.lo as i128,
            self.hi as i128 * other.hi as i128,
        ];
        let lo = candidates.iter().copied().min().unwrap();
        let hi = candidates.iter().copied().max().unwrap();
        Range::new(clamp_i128(lo), clamp_i128(hi))
    }

    /// Interval absolute value.
    pub fn abs(self) -> Range {
        if self.empty {
            return Range::empty();
        }
        if self.lo >= 0 {
            self
        } else if self.hi <= 0 {
            self.neg()
        } else {
            let m = clamp_i128((self.hi as i128).max(-(self.lo as i128)));
            Range::new(0, m)
        }
    }

    /// Pointwise minimum.
    pub fn min(self, other: Range) -> Range {
        if self.empty || other.empty {
            return Range::empty();
        }
        Range::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Pointwise maximum.
    pub fn max(self, other: Range) -> Range {
        if self.empty || other.empty {
            return Range::empty();
        }
        Range::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Three-valued `self <= other`.
    pub fn le(self, other: Range) -> TriBool {
        if self.empty || other.empty {
            // Vacuously true over an empty set of points.
            return TriBool::True;
        }
        if self.hi <= other.lo {
            TriBool::True
        } else if self.lo > other.hi {
            TriBool::False
        } else {
            TriBool::Unknown
        }
    }

    /// Three-valued `self < other`.
    pub fn lt(self, other: Range) -> TriBool {
        if self.empty || other.empty {
            return TriBool::True;
        }
        if self.hi < other.lo {
            TriBool::True
        } else if self.lo >= other.hi {
            TriBool::False
        } else {
            TriBool::Unknown
        }
    }

    /// Three-valued `self == other`.
    pub fn eq_tri(self, other: Range) -> TriBool {
        if self.empty || other.empty {
            return TriBool::True;
        }
        if self.is_singleton() && other.is_singleton() && self.lo == other.lo {
            TriBool::True
        } else if self.intersect(other).is_empty() {
            TriBool::False
        } else {
            TriBool::Unknown
        }
    }

    /// Splits the interval into two halves at its midpoint. Returns `None` for singletons or the
    /// empty interval.
    pub fn bisect(self) -> Option<(Range, Range)> {
        if self.empty || self.is_singleton() {
            return None;
        }
        let mid = self.lo + ((self.hi as i128 - self.lo as i128) / 2) as i64;
        Some((Range::new(self.lo, mid), Range::new(mid + 1, self.hi)))
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// An axis-aligned box: one [`Range`] per secret field.
///
/// This is the search-state representation used by the branch-and-prune solver; the box is empty
/// as soon as any of its component ranges is empty.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntBox {
    dims: Vec<Range>,
}

impl IntBox {
    /// Creates a box from per-dimension ranges.
    pub fn new(dims: Vec<Range>) -> Self {
        IntBox { dims }
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension ranges.
    pub fn dims(&self) -> &[Range] {
        &self.dims
    }

    /// Range for dimension `i`.
    pub fn dim(&self, i: usize) -> Range {
        self.dims[i]
    }

    /// Replaces the range of dimension `i`, returning the modified box.
    pub fn with_dim(&self, i: usize, r: Range) -> IntBox {
        let mut dims = self.dims.clone();
        dims[i] = r;
        IntBox { dims }
    }

    /// Returns `true` if the box is empty (any dimension is empty).
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|r| r.is_empty())
    }

    /// Returns `true` if the box contains exactly one point.
    pub fn is_singleton(&self) -> bool {
        !self.is_empty() && self.dims.iter().all(|r| r.is_singleton())
    }

    /// Number of points in the box.
    pub fn count(&self) -> u128 {
        if self.is_empty() {
            return 0;
        }
        self.dims.iter().map(|r| r.count()).product()
    }

    /// Returns `true` if `p` lies in the box.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.arity() == self.arity() && self.dims.iter().zip(p.iter()).all(|(r, v)| r.contains(v))
    }

    /// Returns `true` if `other` is fully contained in `self`.
    pub fn contains_box(&self, other: &IntBox) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() || self.arity() != other.arity() {
            return false;
        }
        self.dims.iter().zip(other.dims.iter()).all(|(a, b)| a.contains_range(*b))
    }

    /// Componentwise intersection.
    pub fn intersect(&self, other: &IntBox) -> IntBox {
        assert_eq!(self.arity(), other.arity(), "boxes must have equal arity");
        IntBox::new(self.dims.iter().zip(other.dims.iter()).map(|(a, b)| a.intersect(*b)).collect())
    }

    /// The lexicographically smallest point of the box, if non-empty.
    pub fn min_corner(&self) -> Option<Point> {
        if self.is_empty() {
            None
        } else {
            Some(self.dims.iter().map(|r| r.lo()).collect())
        }
    }

    /// Index of the widest dimension that is not a singleton, if any.
    pub fn widest_splittable_dim(&self) -> Option<usize> {
        self.dims
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty() && !r.is_singleton())
            .max_by_key(|(_, r)| r.count())
            .map(|(i, _)| i)
    }

    /// Splits the box into two along dimension `dim`. Returns `None` if that dimension cannot be
    /// split.
    pub fn bisect(&self, dim: usize) -> Option<(IntBox, IntBox)> {
        let (a, b) = self.dims[dim].bisect()?;
        Some((self.with_dim(dim, a), self.with_dim(dim, b)))
    }

    /// Iterates over every point of the box. Intended for small boxes (tests, ground truth on
    /// small spaces).
    pub fn points(&self) -> BoxPoints {
        BoxPoints::new(self.clone())
    }

    /// Partitions the box into at most `n` disjoint sub-boxes whose union is exactly `self`, by
    /// repeatedly bisecting the currently largest chunk along its widest dimension.
    ///
    /// This is the work-sharding primitive of the parallel solver driver: the sub-boxes are
    /// independent branch-and-prune subtrees, so model counts over the chunks sum to the count
    /// over the whole box and validity holds on the box iff it holds on every chunk. The split is
    /// deterministic; fewer than `n` chunks are returned when the box runs out of splittable
    /// dimensions (e.g. it has fewer than `n` points).
    pub fn split_chunks(&self, n: usize) -> Vec<IntBox> {
        let mut chunks = vec![self.clone()];
        if self.is_empty() || n <= 1 {
            return chunks;
        }
        while chunks.len() < n {
            let candidate = chunks
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.widest_splittable_dim().map(|dim| (i, dim, b.count())))
                .max_by_key(|&(_, _, count)| count);
            let Some((index, dim, _)) = candidate else { break };
            let boxed = chunks.swap_remove(index);
            let (lo, hi) = boxed.bisect(dim).expect("widest splittable dim bisects");
            chunks.push(lo);
            chunks.push(hi);
        }
        chunks
    }
}

impl fmt::Display for IntBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over every concrete point of an [`IntBox`], in lexicographic order.
#[derive(Debug, Clone)]
pub struct BoxPoints {
    boxed: IntBox,
    current: Option<Vec<i64>>,
}

impl BoxPoints {
    fn new(boxed: IntBox) -> Self {
        let current = if boxed.is_empty() || boxed.arity() == 0 {
            // Arity-0 boxes conceptually contain one (empty) point; handled below.
            if boxed.arity() == 0 && !boxed.is_empty() {
                Some(Vec::new())
            } else {
                None
            }
        } else {
            Some(boxed.dims().iter().map(|r| r.lo()).collect())
        };
        BoxPoints { boxed, current }
    }
}

impl Iterator for BoxPoints {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let current = self.current.clone()?;
        // Advance like an odometer, last dimension fastest.
        let mut next = current.clone();
        let mut dim = next.len();
        loop {
            if dim == 0 {
                self.current = None;
                break;
            }
            dim -= 1;
            if next[dim] < self.boxed.dim(dim).hi() {
                next[dim] += 1;
                for (i, v) in next.iter_mut().enumerate().skip(dim + 1) {
                    // reset lower-significance dimensions to their lower bound
                    *v = self.boxed.dim(i).lo();
                }
                self.current = Some(next);
                break;
            }
        }
        Some(Point::new(current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basic_arithmetic() {
        let a = Range::new(1, 3);
        let b = Range::new(-2, 2);
        assert_eq!(a.add(b), Range::new(-1, 5));
        assert_eq!(a.sub(b), Range::new(-1, 5));
        assert_eq!(a.neg(), Range::new(-3, -1));
        assert_eq!(b.abs(), Range::new(0, 2));
        assert_eq!(a.mul_const(-2), Range::new(-6, -2));
        assert_eq!(a.mul(b), Range::new(-6, 6));
    }

    #[test]
    fn range_abs_cases() {
        assert_eq!(Range::new(2, 5).abs(), Range::new(2, 5));
        assert_eq!(Range::new(-5, -2).abs(), Range::new(2, 5));
        assert_eq!(Range::new(-3, 7).abs(), Range::new(0, 7));
    }

    #[test]
    fn range_saturates_instead_of_overflowing() {
        let big = Range::new(i64::MAX - 1, i64::MAX);
        assert_eq!(big.add(Range::singleton(10)).hi(), i64::MAX);
        assert_eq!(Range::new(i64::MIN, i64::MIN + 1).neg().hi(), i64::MAX);
        assert_eq!(big.mul_const(3).hi(), i64::MAX);
    }

    #[test]
    fn range_set_operations() {
        let a = Range::new(0, 10);
        let b = Range::new(5, 20);
        assert_eq!(a.intersect(b), Range::new(5, 10));
        assert_eq!(a.hull(b), Range::new(0, 20));
        assert!(a.intersect(Range::new(11, 12)).is_empty());
        assert!(a.contains_range(Range::new(3, 7)));
        assert!(!a.contains_range(b));
        assert!(a.contains_range(Range::empty()));
    }

    #[test]
    fn range_counting() {
        assert_eq!(Range::new(0, 9).count(), 10);
        assert_eq!(Range::singleton(5).count(), 1);
        assert_eq!(Range::empty().count(), 0);
        assert_eq!(Range::FULL.count(), (u64::MAX as u128) + 1);
    }

    #[test]
    fn range_comparisons_three_valued() {
        assert_eq!(Range::new(0, 3).le(Range::new(3, 10)), TriBool::True);
        assert_eq!(Range::new(4, 6).le(Range::new(0, 3)), TriBool::False);
        assert_eq!(Range::new(0, 5).le(Range::new(3, 4)), TriBool::Unknown);
        assert_eq!(Range::new(0, 2).lt(Range::new(3, 4)), TriBool::True);
        assert_eq!(Range::new(3, 4).lt(Range::new(0, 3)), TriBool::False);
        assert_eq!(Range::singleton(2).eq_tri(Range::singleton(2)), TriBool::True);
        assert_eq!(Range::new(0, 1).eq_tri(Range::new(5, 6)), TriBool::False);
        assert_eq!(Range::new(0, 4).eq_tri(Range::new(2, 9)), TriBool::Unknown);
    }

    #[test]
    fn range_bisection_covers_interval() {
        let r = Range::new(0, 9);
        let (a, b) = r.bisect().unwrap();
        assert_eq!(a, Range::new(0, 4));
        assert_eq!(b, Range::new(5, 9));
        assert_eq!(a.count() + b.count(), r.count());
        assert!(Range::singleton(3).bisect().is_none());
        assert!(Range::empty().bisect().is_none());
    }

    #[test]
    fn box_count_and_membership() {
        let b = IntBox::new(vec![Range::new(0, 3), Range::new(10, 12)]);
        assert_eq!(b.count(), 12);
        assert!(b.contains_point(&Point::new(vec![2, 11])));
        assert!(!b.contains_point(&Point::new(vec![4, 11])));
        assert!(!b.contains_point(&Point::new(vec![2])));
        assert!(!b.is_empty());
        assert!(!b.is_singleton());
        assert!(IntBox::new(vec![Range::singleton(1)]).is_singleton());
    }

    #[test]
    fn box_subset_and_intersection() {
        let outer = IntBox::new(vec![Range::new(0, 10), Range::new(0, 10)]);
        let inner = IntBox::new(vec![Range::new(2, 5), Range::new(3, 4)]);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        let other = IntBox::new(vec![Range::new(8, 15), Range::new(9, 20)]);
        let meet = outer.intersect(&other);
        assert_eq!(meet, IntBox::new(vec![Range::new(8, 10), Range::new(9, 10)]));
        let empty = inner.intersect(&other);
        assert!(empty.is_empty());
        assert!(outer.contains_box(&empty));
    }

    #[test]
    fn box_bisection_partitions_points() {
        let b = IntBox::new(vec![Range::new(0, 5), Range::new(0, 2)]);
        let dim = b.widest_splittable_dim().unwrap();
        assert_eq!(dim, 0);
        let (l, r) = b.bisect(dim).unwrap();
        assert_eq!(l.count() + r.count(), b.count());
        assert!(b.contains_box(&l) && b.contains_box(&r));
        assert!(l.intersect(&r).is_empty());
    }

    #[test]
    fn box_point_iteration_is_exhaustive_and_ordered() {
        let b = IntBox::new(vec![Range::new(0, 1), Range::new(5, 6)]);
        let pts: Vec<Point> = b.points().collect();
        assert_eq!(
            pts,
            vec![
                Point::new(vec![0, 5]),
                Point::new(vec![0, 6]),
                Point::new(vec![1, 5]),
                Point::new(vec![1, 6]),
            ]
        );
        let empty = IntBox::new(vec![Range::empty()]);
        assert_eq!(empty.points().count(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Range::new(1, 2).to_string(), "[1, 2]");
        assert_eq!(Range::empty().to_string(), "∅");
        let b = IntBox::new(vec![Range::new(0, 1), Range::new(2, 3)]);
        assert_eq!(b.to_string(), "{[0, 1] × [2, 3]}");
    }

    #[test]
    fn split_chunks_partitions_the_box() {
        let b = IntBox::new(vec![Range::new(0, 400), Range::new(0, 400)]);
        for n in [1, 2, 3, 7, 16] {
            let chunks = b.split_chunks(n);
            assert!(chunks.len() <= n.max(1));
            // Counts sum to the whole and chunks are pairwise disjoint.
            assert_eq!(chunks.iter().map(IntBox::count).sum::<u128>(), b.count());
            for (i, a) in chunks.iter().enumerate() {
                assert!(b.contains_box(a));
                for c in &chunks[i + 1..] {
                    assert!(a.intersect(c).is_empty(), "chunks {a} and {c} overlap");
                }
            }
        }
        // Deterministic: two calls agree exactly.
        assert_eq!(b.split_chunks(8), b.split_chunks(8));
        // A box with fewer points than requested chunks returns what it can.
        let tiny = IntBox::new(vec![Range::new(0, 1)]);
        let chunks = tiny.split_chunks(8);
        assert_eq!(chunks.len(), 2);
        // Empty and n <= 1 are identity.
        assert_eq!(b.split_chunks(1), vec![b.clone()]);
        let empty = IntBox::new(vec![Range::empty()]);
        assert_eq!(empty.split_chunks(4).len(), 1);
    }
}
