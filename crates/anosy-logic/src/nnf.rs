//! Normalization: negation normal form and constant folding.
//!
//! The solver's propagation works on predicates where negation has been pushed down to atomic
//! comparisons (so that each comparison can be narrowed directly) and trivially-constant
//! sub-formulas have been folded away.

use crate::Pred;
use std::sync::Arc;

/// Simplifies a predicate: pushes negations down to comparisons (negation normal form),
/// rewrites `=>` and `<=>` into `&&`/`||`/`!`, flattens nested conjunctions/disjunctions and
/// folds constants.
///
/// The result is logically equivalent to the input on every point.
pub fn simplify_pred(pred: &Pred) -> Pred {
    flatten(&nnf(pred, false))
}

/// Pushes negation inward. `negated` tracks whether we are under an odd number of negations.
fn nnf(pred: &Pred, negated: bool) -> Pred {
    match pred {
        Pred::True => {
            if negated {
                Pred::False
            } else {
                Pred::True
            }
        }
        Pred::False => {
            if negated {
                Pred::True
            } else {
                Pred::False
            }
        }
        Pred::Cmp(op, a, b) => {
            let op = if negated { op.negate() } else { *op };
            Pred::Cmp(op, Arc::clone(a), Arc::clone(b))
        }
        Pred::Not(p) => nnf(p, !negated),
        Pred::And(ps) => {
            let children: Vec<Pred> = ps.iter().map(|p| nnf(p, negated)).collect();
            if negated {
                Pred::Or(children)
            } else {
                Pred::And(children)
            }
        }
        Pred::Or(ps) => {
            let children: Vec<Pred> = ps.iter().map(|p| nnf(p, negated)).collect();
            if negated {
                Pred::And(children)
            } else {
                Pred::Or(children)
            }
        }
        Pred::Implies(a, b) => {
            // a => b  ≡  !a || b
            let rewritten = Pred::Or(vec![nnf(a, true), nnf(b, false)]);
            if negated {
                // !(a => b) ≡ a && !b
                Pred::And(vec![nnf(a, false), nnf(b, true)])
            } else {
                rewritten
            }
        }
        Pred::Iff(a, b) => {
            // a <=> b ≡ (a && b) || (!a && !b)
            let both = Pred::And(vec![nnf(a, false), nnf(b, false)]);
            let neither = Pred::And(vec![nnf(a, true), nnf(b, true)]);
            let mixed1 = Pred::And(vec![nnf(a, false), nnf(b, true)]);
            let mixed2 = Pred::And(vec![nnf(a, true), nnf(b, false)]);
            if negated {
                Pred::Or(vec![mixed1, mixed2])
            } else {
                Pred::Or(vec![both, neither])
            }
        }
    }
}

/// Flattens nested conjunctions/disjunctions, folds constant children and constant comparisons.
fn flatten(pred: &Pred) -> Pred {
    match pred {
        Pred::And(ps) => {
            let mut out = Vec::new();
            for p in ps {
                match flatten(p) {
                    Pred::True => {}
                    Pred::False => return Pred::False,
                    Pred::And(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Pred::True,
                1 => out.pop().expect("len checked"),
                _ => Pred::And(out),
            }
        }
        Pred::Or(ps) => {
            let mut out = Vec::new();
            for p in ps {
                match flatten(p) {
                    Pred::False => {}
                    Pred::True => return Pred::True,
                    Pred::Or(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Pred::False,
                1 => out.pop().expect("len checked"),
                _ => Pred::Or(out),
            }
        }
        Pred::Cmp(op, a, b) => {
            if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
                Pred::from(op.apply(ca, cb))
            } else {
                pred.clone()
            }
        }
        Pred::Not(p) => match flatten(p) {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            other => Pred::Not(Arc::new(other)),
        },
        other => other.clone(),
    }
}

/// Returns `true` when the predicate is in negation normal form, i.e. contains no `Not`,
/// `Implies` or `Iff` nodes (negation only appears folded into comparison operators).
pub fn is_nnf(pred: &Pred) -> bool {
    match pred {
        Pred::True | Pred::False | Pred::Cmp(..) => true,
        Pred::Not(_) | Pred::Implies(..) | Pred::Iff(..) => false,
        Pred::And(ps) | Pred::Or(ps) => ps.iter().all(is_nnf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntBox, IntExpr, Point, Range, SecretLayout};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", -5, 5).field("y", -5, 5).build()
    }

    fn equivalent_on_space(a: &Pred, b: &Pred) {
        for p in layout().space().points() {
            assert_eq!(a.eval(&p).unwrap(), b.eval(&p).unwrap(), "differ at {p}");
        }
    }

    #[test]
    fn negated_comparison_flips_operator() {
        let q = IntExpr::var(0).le(3).negate();
        let s = simplify_pred(&q);
        assert!(is_nnf(&s));
        equivalent_on_space(&q, &s);
    }

    #[test]
    fn double_negation_is_removed() {
        let q = IntExpr::var(0).lt(0).negate().negate();
        let s = simplify_pred(&q);
        assert_eq!(s, IntExpr::var(0).lt(0));
    }

    #[test]
    fn de_morgan_is_applied() {
        let q = Pred::and(vec![IntExpr::var(0).ge(0), IntExpr::var(1).ge(0)]).negate();
        let s = simplify_pred(&q);
        assert!(is_nnf(&s));
        assert!(matches!(s, Pred::Or(_)));
        equivalent_on_space(&q, &s);
    }

    #[test]
    fn implication_and_iff_are_rewritten() {
        let a = IntExpr::var(0).ge(0);
        let b = IntExpr::var(1).ge(0);
        let imp = a.clone().implies(b.clone());
        let iff = a.clone().iff(b.clone());
        let not_iff = iff.clone().negate();
        for q in [&imp, &iff, &not_iff] {
            let s = simplify_pred(q);
            assert!(is_nnf(&s), "{s} not NNF");
            equivalent_on_space(q, &s);
        }
    }

    #[test]
    fn constants_are_folded() {
        let q = Pred::and(vec![Pred::True, IntExpr::constant(2).le(3), IntExpr::var(0).ge(0)]);
        let s = simplify_pred(&q);
        assert_eq!(s, IntExpr::var(0).ge(0));
        let contradiction = Pred::and(vec![IntExpr::var(0).ge(0), Pred::False]);
        assert_eq!(simplify_pred(&contradiction), Pred::False);
        let tautology = Pred::or(vec![IntExpr::var(0).ge(0), Pred::True]);
        assert_eq!(simplify_pred(&tautology), Pred::True);
    }

    #[test]
    fn nested_connectives_are_flattened() {
        let q = Pred::and(vec![
            Pred::and(vec![IntExpr::var(0).ge(0), IntExpr::var(1).ge(0)]),
            IntExpr::var(0).le(3),
        ]);
        let s = simplify_pred(&q);
        match &s {
            Pred::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected flattened And, got {other}"),
        }
        equivalent_on_space(&q, &s);
    }

    #[test]
    fn simplified_abstract_eval_remains_sound() {
        // Simplification must not weaken the abstract evaluator's soundness.
        let q = Pred::and(vec![
            ((IntExpr::var(0)).abs() + (IntExpr::var(1)).abs()).le(4),
            IntExpr::var(0).ge(0).implies(IntExpr::var(1).ge(0)),
        ]);
        let s = simplify_pred(&q);
        let boxed = IntBox::new(vec![Range::new(-5, 5), Range::new(-5, 5)]);
        if let Some(v) = s.eval_abstract(&boxed).to_option() {
            for p in boxed.points() {
                assert_eq!(s.eval(&p).unwrap(), v);
            }
        }
        equivalent_on_space(&q, &s);
        let _ = Point::new(vec![0, 0]);
    }

    #[test]
    fn empty_connectives_fold_to_constants() {
        assert_eq!(simplify_pred(&Pred::and(vec![])), Pred::True);
        assert_eq!(simplify_pred(&Pred::or(vec![])), Pred::False);
        assert_eq!(simplify_pred(&Pred::and(vec![]).negate()), Pred::False);
    }
}
