//! Three-valued logic used by the abstract (interval) evaluator.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// Three-valued truth value: the result of evaluating a predicate over a *set* of points.
///
/// `True` / `False` mean the predicate evaluates to that value for **every** point of the set,
/// while [`TriBool::Unknown`] means the set contains both satisfying and falsifying points (or
/// the abstraction is too coarse to tell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriBool {
    /// Definitely false for all points.
    False,
    /// Could be either; the abstraction cannot decide.
    Unknown,
    /// Definitely true for all points.
    True,
}

impl TriBool {
    /// Lifts a concrete boolean to a definite three-valued result.
    pub fn from_bool(b: bool) -> TriBool {
        if b {
            TriBool::True
        } else {
            TriBool::False
        }
    }

    /// Returns `true` when the value is [`TriBool::True`].
    pub fn is_true(self) -> bool {
        self == TriBool::True
    }

    /// Returns `true` when the value is [`TriBool::False`].
    pub fn is_false(self) -> bool {
        self == TriBool::False
    }

    /// Returns `true` when the value is [`TriBool::Unknown`].
    pub fn is_unknown(self) -> bool {
        self == TriBool::Unknown
    }

    /// Returns `Some(bool)` if the value is definite, `None` otherwise.
    pub fn to_option(self) -> Option<bool> {
        match self {
            TriBool::True => Some(true),
            TriBool::False => Some(false),
            TriBool::Unknown => None,
        }
    }

    /// Kleene conjunction.
    pub fn and(self, other: TriBool) -> TriBool {
        use TriBool::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: TriBool) -> TriBool {
        use TriBool::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation.
    pub fn negate(self) -> TriBool {
        match self {
            TriBool::True => TriBool::False,
            TriBool::False => TriBool::True,
            TriBool::Unknown => TriBool::Unknown,
        }
    }

    /// Kleene implication (`¬self ∨ other`).
    pub fn implies(self, other: TriBool) -> TriBool {
        self.negate().or(other)
    }
}

impl From<bool> for TriBool {
    fn from(b: bool) -> Self {
        TriBool::from_bool(b)
    }
}

impl Not for TriBool {
    type Output = TriBool;
    fn not(self) -> TriBool {
        self.negate()
    }
}

impl BitAnd for TriBool {
    type Output = TriBool;
    fn bitand(self, rhs: TriBool) -> TriBool {
        self.and(rhs)
    }
}

impl BitOr for TriBool {
    type Output = TriBool;
    fn bitor(self, rhs: TriBool) -> TriBool {
        self.or(rhs)
    }
}

impl fmt::Display for TriBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriBool::True => write!(f, "true"),
            TriBool::False => write!(f, "false"),
            TriBool::Unknown => write!(f, "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::TriBool::*;
    use super::*;

    #[test]
    fn conjunction_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(True), Unknown);
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn disjunction_truth_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(Unknown.or(True), True);
    }

    #[test]
    fn negation_is_involutive_on_definite_values() {
        assert_eq!(True.negate(), False);
        assert_eq!(False.negate(), True);
        assert_eq!(Unknown.negate(), Unknown);
        for v in [True, False, Unknown] {
            assert_eq!(v.negate().negate(), v);
        }
    }

    #[test]
    fn implication_matches_material_definition() {
        for a in [True, False, Unknown] {
            for b in [True, False, Unknown] {
                assert_eq!(a.implies(b), a.negate().or(b));
            }
        }
    }

    #[test]
    fn operators_match_methods() {
        assert_eq!(True & Unknown, Unknown);
        assert_eq!(False | True, True);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(TriBool::from(true).to_option(), Some(true));
        assert_eq!(TriBool::from(false).to_option(), Some(false));
        assert_eq!(Unknown.to_option(), None);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(True.to_string(), "true");
        assert_eq!(Unknown.to_string(), "unknown");
    }
}
