//! Concrete secrets as points in the multi-dimensional integer space.

use std::fmt;
use std::ops::Index;

/// A concrete secret value: one `i64` per field of the secret, in layout order.
///
/// Points are what queries are evaluated on and what abstract domains represent sets of.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    coords: Vec<i64>,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<i64>) -> Self {
        Point { coords }
    }

    /// The number of fields (dimensions) of the point.
    pub fn arity(&self) -> usize {
        self.coords.len()
    }

    /// Returns the coordinate of field `index`, if it exists.
    pub fn get(&self, index: usize) -> Option<i64> {
        self.coords.get(index).copied()
    }

    /// Borrow the coordinates as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.coords
    }

    /// Consumes the point and returns the underlying coordinate vector.
    pub fn into_inner(self) -> Vec<i64> {
        self.coords
    }

    /// Iterates over the coordinates.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.coords.iter().copied()
    }
}

impl From<Vec<i64>> for Point {
    fn from(coords: Vec<i64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[i64]> for Point {
    fn from(coords: &[i64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl FromIterator<i64> for Point {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        Point::new(iter.into_iter().collect())
    }
}

impl Index<usize> for Point {
    type Output = i64;
    fn index(&self, index: usize) -> &i64 {
        &self.coords[index]
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let p = Point::new(vec![3, -4, 5]);
        assert_eq!(p.arity(), 3);
        assert_eq!(p.get(1), Some(-4));
        assert_eq!(p.get(3), None);
        assert_eq!(p[2], 5);
    }

    #[test]
    fn conversions() {
        let p: Point = vec![1, 2].into();
        let q: Point = [1i64, 2].as_slice().into();
        let r: Point = (1..=2).collect();
        assert_eq!(p, q);
        assert_eq!(p, r);
        assert_eq!(p.clone().into_inner(), vec![1, 2]);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(Point::new(vec![300, 200]).to_string(), "(300, 200)");
        assert_eq!(Point::default().to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(vec![1, 5]) < Point::new(vec![2, 0]));
        assert!(Point::new(vec![1, 5]) < Point::new(vec![1, 6]));
    }
}
