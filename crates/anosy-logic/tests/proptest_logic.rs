//! Property-based tests for the query language: the printer/parser round-trip and the
//! negation-normal-form transformation, on randomized predicates.
//!
//! Two generators are used:
//!
//! * [`arb_parseable_pred`] ranges over the *parser's image* — the fragment `Display` prints in
//!   re-readable surface syntax (no `Not`/`Implies`/`Iff` nodes, whose printed forms `!(..)`,
//!   `=>`, `<=>` either normalize on re-parse or are not part of the grammar) — where
//!   `parse(print(p)) == p` holds *structurally*;
//! * [`arb_pred`] additionally wraps random subtrees in `Not`/`Implies`/`Iff`, where the
//!   round-trip is checked *through* `simplify_pred` (whose NNF output is back inside the
//!   printable fragment) and semantically on random points.

use anosy_logic::{
    is_nnf, parse_pred, simplify_pred, IntBox, IntExpr, Point, Pred, Range, TermStore, TriBool,
};
use proptest::prelude::*;

const VARS: usize = 2;

/// Integer expressions in the parser's image: non-negative literals (a printed `-3` re-parses as
/// `Neg(3)`), and `Scale` only over non-constant operands (a printed `(3 * 4)` re-parses folded).
fn arb_expr(depth: usize) -> BoxedStrategy<IntExpr> {
    let leaf = prop_oneof![
        (0usize..VARS).prop_map(IntExpr::var),
        (0i64..=20).prop_map(IntExpr::constant),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = move || arb_expr(depth - 1);
    prop_oneof![
        2 => leaf,
        2 => (inner(), inner()).prop_map(|(a, b)| a + b),
        2 => (inner(), inner()).prop_map(|(a, b)| a - b),
        1 => inner().prop_map(|a| -a),
        1 => inner().prop_map(|a| a.abs()),
        1 => (inner(), inner()).prop_map(|(a, b)| a.min_expr(b)),
        1 => (inner(), inner()).prop_map(|(a, b)| a.max_expr(b)),
        1 => (inner(), 2i64..=5).prop_map(|(a, k)| {
            // `Scale` directly over a literal folds on re-parse; keep the operand symbolic.
            if a.as_const().is_some() {
                IntExpr::var(0).scale(k)
            } else {
                a.scale(k)
            }
        }),
    ]
    .boxed()
}

fn arb_cmp() -> BoxedStrategy<Pred> {
    use anosy_logic::CmpOp;
    (
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
        ],
        arb_expr(2),
        arb_expr(2),
    )
        .prop_map(|(op, a, b)| Pred::cmp(op, a, b))
        .boxed()
}

/// Predicates in the parser's image (see module docs).
fn arb_parseable_pred(depth: usize) -> BoxedStrategy<Pred> {
    let leaf = prop_oneof![
        6 => arb_cmp(),
        1 => Just(Pred::True),
        1 => Just(Pred::False),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = move || arb_parseable_pred(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => proptest::collection::vec(inner(), 2..4).prop_map(Pred::And),
        2 => proptest::collection::vec(inner(), 2..4).prop_map(Pred::Or),
    ]
    .boxed()
}

/// Arbitrary predicates, including the connectives only NNF can print back.
fn arb_pred(depth: usize) -> BoxedStrategy<Pred> {
    if depth == 0 {
        return arb_parseable_pred(0);
    }
    let inner = move || arb_pred(depth - 1);
    prop_oneof![
        3 => arb_parseable_pred(depth),
        2 => inner().prop_map(Pred::negate),
        1 => (inner(), inner()).prop_map(|(a, b)| a.implies(b)),
        1 => (inner(), inner()).prop_map(|(a, b)| a.iff(b)),
    ]
    .boxed()
}

fn arb_point() -> impl Strategy<Value = Point> {
    proptest::collection::vec(-30i64..=30, VARS..VARS + 1).prop_map(Point::new)
}

fn singleton_box(p: &Point) -> IntBox {
    IntBox::new(p.iter().map(Range::singleton).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The printer and parser are exact inverses on the parseable fragment.
    #[test]
    fn parse_print_round_trips_structurally(p in arb_parseable_pred(3)) {
        let printed = p.to_string();
        let reparsed = parse_pred(&printed);
        prop_assert!(reparsed.is_ok(), "`{printed}` failed to re-parse: {:?}", reparsed.err());
        prop_assert_eq!(reparsed.unwrap(), p);
    }

    /// NNF lands back inside the printable fragment, so the round-trip extends to arbitrary
    /// predicates through `simplify_pred`.
    #[test]
    fn nnf_round_trips_through_the_parser(p in arb_pred(3)) {
        let s = simplify_pred(&p);
        prop_assert!(is_nnf(&s), "simplify_pred produced a non-NNF predicate: {s}");
        let printed = s.to_string();
        let reparsed = parse_pred(&printed);
        prop_assert!(reparsed.is_ok(), "`{printed}` failed to re-parse: {:?}", reparsed.err());
        prop_assert_eq!(reparsed.unwrap(), s);
    }

    /// `simplify_pred` preserves concrete evaluation on random points.
    #[test]
    fn nnf_preserves_concrete_evaluation(p in arb_pred(3), points in proptest::collection::vec(arb_point(), 1..8)) {
        let s = simplify_pred(&p);
        for point in &points {
            // Overflow behaves identically on both sides, so only compare defined results.
            if let Ok(expected) = p.eval(point) {
                let got = s.eval(point);
                prop_assert_eq!(got.as_ref().ok(), Some(&expected), "differ at {}", point);
            }
        }
    }

    /// `simplify_pred` preserves tribool (abstract) evaluation on random points: on a singleton
    /// box both sides must decide, and agree with the concrete answer.
    #[test]
    fn nnf_preserves_tribool_evaluation_on_points(p in arb_pred(3), point in arb_point()) {
        if let Ok(expected) = p.eval(&point) {
            let boxed = singleton_box(&point);
            let s = simplify_pred(&p);
            for (name, q) in [("original", &p), ("simplified", &s)] {
                let tri = q.eval_abstract(&boxed);
                prop_assert!(
                    tri == TriBool::from_bool(expected) || tri.is_unknown(),
                    "{name} evaluated abstractly to {tri} but concretely to {expected} at {point}"
                );
            }
            // The simplified form is what the solver prunes with; on singleton boxes it must
            // decide atoms exactly as the concrete semantics does.
            prop_assert_eq!(s.eval_abstract(&boxed).to_option(), Some(expected));
        }
    }

    /// `is_nnf` is sound: anything the parser produces from NNF output contains no negation
    /// connectives, and wrapping any predicate in `Not` makes `is_nnf` false.
    #[test]
    fn is_nnf_rejects_negation_wrappers(p in arb_pred(2)) {
        prop_assert!(!is_nnf(&p.clone().negate().negate()));
        prop_assert!(is_nnf(&simplify_pred(&p)));
    }

    /// Interning is semantics-preserving: `intern → eval` and `intern → lower → eval` both agree
    /// with direct tree evaluation on random points, and lowering reconstructs the exact tree.
    #[test]
    fn interning_preserves_evaluation(p in arb_pred(3), points in proptest::collection::vec(arb_point(), 1..8)) {
        let mut store = TermStore::new();
        let id = store.intern_pred(&p);
        let lowered = store.pred_to_tree(id);
        prop_assert_eq!(&lowered, &p, "lowering must reconstruct the interned tree");
        for point in &points {
            let direct = p.eval(point);
            let via_store = store.eval_pred(id, point);
            let via_lowered = lowered.eval(point);
            prop_assert_eq!(via_store.as_ref().ok(), direct.as_ref().ok(),
                "store eval differs at {}", point);
            prop_assert_eq!(via_lowered.as_ref().ok(), direct.as_ref().ok(),
                "lowered eval differs at {}", point);
        }
    }

    /// Interning twice — and interning the lowered tree — yields the same id (hash-consing is
    /// stable across the lowering round-trip).
    #[test]
    fn interning_is_stable_across_round_trips(p in arb_pred(3)) {
        let mut store = TermStore::new();
        let first = store.intern_pred(&p);
        let second = store.intern_pred(&p);
        prop_assert_eq!(first, second);
        let lowered = store.pred_to_tree(first);
        let third = store.intern_pred(&lowered);
        prop_assert_eq!(first, third);
    }

    /// Store simplification agrees with tree simplification and is idempotent **as ids**:
    /// simplifying twice returns the id the first pass produced.
    #[test]
    fn store_simplification_is_idempotent_and_agrees_with_trees(p in arb_pred(3)) {
        let mut store = TermStore::new();
        let id = store.intern_pred(&p);
        let once = store.simplify(id);
        prop_assert_eq!(store.simplify(once), once, "simplify must be idempotent on ids");
        prop_assert!(store.is_nnf(once));
        let via_tree = simplify_pred(&p);
        let via_tree_id = store.intern_pred(&via_tree);
        prop_assert_eq!(once, via_tree_id, "store and tree simplification must coincide");
    }

    /// The store's memoized abstract evaluator matches the tree evaluator on singleton boxes
    /// (where it must decide exactly like the concrete semantics).
    #[test]
    fn store_abstract_evaluation_agrees_on_points(p in arb_pred(3), point in arb_point()) {
        if let Ok(expected) = p.eval(&point) {
            let mut store = TermStore::new();
            let id = store.intern_pred(&p);
            let boxed = singleton_box(&point);
            prop_assert_eq!(store.eval_abstract_pred(id, &boxed), p.eval_abstract(&boxed));
            let simplified = store.simplify(id);
            prop_assert_eq!(store.eval_abstract_pred(simplified, &boxed).to_option(), Some(expected));
        }
    }
}
