//! ANOSY-RS — approximated knowledge synthesis with quantitative declassification policies.
//!
//! This facade crate re-exports the whole public API of the workspace, so applications only need
//! one dependency:
//!
//! * [`logic`] — the query language (predicates over bounded multi-integer secrets);
//! * [`solver`] — the branch-and-prune decision procedures used for synthesis and verification;
//! * [`domains`] — the interval and powerset-of-intervals abstract domains for knowledge;
//! * [`synth`] — `Synth`/`IterSynth`: correct-by-construction ind. set synthesis;
//! * [`verify`] — the refinement-spec checker (the Liquid Haskell stand-in);
//! * [`ifc`] — the LIO-style information-flow substrate;
//! * [`core`] — knowledge tracking, policies and the bounded downgrade (`AnosySession`);
//! * [`serve`] — the deployment layer: shared term store + synthesis cache across sessions,
//!   sharded parallel solver driver, batched downgrades, warm-start persistence, the serving
//!   frontend — a sans-IO `Frontend` state machine speaking the typed
//!   `ServeRequest`/`ServeResponse` protocol (line-codec in `serve::wire`) with per-tick
//!   downgrade batching — and the event-loop `Server` reactor driving it over a pluggable
//!   `Transport` (TCP and stdin/stdout in the `anosy-served` binary, plus `SimNet`, the seeded
//!   deterministic network simulator the chaos tests replay);
//! * [`suite`] — the paper's evaluation workloads (Mardziel benchmarks, secure advertising).
//!
//! The most common items are re-exported at the crate root. See the `examples/` directory for
//! end-to-end walkthroughs (quickstart, the secure-advertising case study, a benchmark explorer
//! and a policy gallery).
//!
//! # Quickstart
//!
//! ```
//! use anosy::prelude::*;
//!
//! // 1. Declare the secret space and the query (the paper's §2 example).
//! let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
//! let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
//! let query = QueryDef::new("nearby_200_200", layout.clone(), nearby).unwrap();
//!
//! // 2. Synthesize + verify + register, then downgrade under a quantitative policy.
//! let mut synth = Synthesizer::new();
//! let mut session: AnosySession<PowersetDomain> =
//!     AnosySession::new(layout, MinSizePolicy::new(100));
//! session.register_synthesized(&mut synth, &query, ApproxKind::Under, Some(3)).unwrap();
//!
//! let secret = Protected::new(Point::new(vec![300, 200]));
//! assert!(session.downgrade(&secret, "nearby_200_200").unwrap());
//! assert!(session.knowledge_of(&Point::new(vec![300, 200])).size() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anosy_core as core;
pub use anosy_domains as domains;
pub use anosy_ifc as ifc;
pub use anosy_logic as logic;
pub use anosy_serve as serve;
pub use anosy_solver as solver;
pub use anosy_suite as suite;
pub use anosy_synth as synth;
pub use anosy_verify as verify;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use anosy_core::{
        AnosyError, AnosySession, AsSecretPoint, KaryIndSets, KaryQuery, Knowledge,
        MinEntropyPolicy, MinSizePolicy, Policy, PolicySpec, QInfo, SynthesizeInto,
    };
    pub use anosy_domains::{
        secret_record, AInt, AbstractDomain, IntervalDomain, PowersetDomain, Secret,
    };
    pub use anosy_ifc::{Label, Labeled, Lio, Protected, SecLevel, Unprotect};
    pub use anosy_logic::{IntExpr, Point, Pred, SecretLayout};
    pub use anosy_serve::{
        ConnId, Deployment, Frontend, RequestId, ServeConfig, ServeRequest, ServeResponse,
        ServeStats, Server, ServerConfig, SessionId, ShardPool, SimNet, TcpTransport, Transport,
    };
    pub use anosy_solver::{ExpansionStrategy, Solver, SolverConfig};
    pub use anosy_synth::{ApproxKind, IndSets, QueryDef, QueryRegistry, SynthConfig, Synthesizer};
    pub use anosy_verify::{VerificationReport, Verifier};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_every_crate() {
        // A compile-time smoke test: one item per re-exported crate.
        let _ = crate::logic::Pred::True;
        let _ = crate::solver::SolverConfig::default();
        let _ = crate::domains::AInt::new(0, 1);
        let _ = crate::synth::ApproxKind::Under;
        let _ = crate::verify::VerificationReport::default();
        let _ = crate::ifc::SecLevel::Public;
        let _ = crate::core::MinSizePolicy::new(1);
        let _ = crate::serve::ServeConfig::for_tests();
        let _ = crate::serve::SessionId(1);
        let _ = crate::serve::SimNet::new(0);
        let _ = crate::serve::ServerConfig::new();
        let _ = crate::core::PolicySpec::parse("min-size:100");
        let _ = crate::suite::benchmarks::BenchmarkId::Birthday;
    }
}
