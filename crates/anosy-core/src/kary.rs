//! Queries with finitely many outputs (the §5.1 "supporting other query classes" extension).
//!
//! The paper notes that non-boolean queries with finitely many outputs can be handled by
//! computing one ind. set per possible output. [`KaryQuery`] represents such a query as an
//! ordered list of boolean cases with first-match semantics plus an implicit "otherwise" output;
//! [`KaryIndSets`] holds one abstract-domain element per output and computes per-output
//! posteriors exactly like the boolean [`anosy_synth::IndSets`].

use crate::session::SynthesizeInto;
use anosy_domains::AbstractDomain;
use anosy_logic::{Point, Pred, SecretLayout};
use anosy_synth::{ApproxKind, QueryDef, SynthError, Synthesizer};
use std::fmt;

/// A query with `cases.len() + 1` possible outputs: output `i < cases.len()` is taken by the
/// first case whose predicate holds, and the final output is the implicit "none of the above".
#[derive(Debug, Clone, PartialEq)]
pub struct KaryQuery {
    name: String,
    layout: SecretLayout,
    cases: Vec<Pred>,
}

impl KaryQuery {
    /// Creates a k-ary query from its ordered cases.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidQuery`] when a case mentions a field outside the layout or
    /// when there are no cases at all.
    pub fn new(
        name: impl Into<String>,
        layout: SecretLayout,
        cases: Vec<Pred>,
    ) -> Result<Self, SynthError> {
        let name = name.into();
        if cases.is_empty() {
            return Err(SynthError::InvalidQuery {
                name,
                reason: "a k-ary query needs at least one case".into(),
            });
        }
        for (i, case) in cases.iter().enumerate() {
            if let Some(max) = case.free_vars().into_iter().max() {
                if max >= layout.arity() {
                    return Err(SynthError::InvalidQuery {
                        name,
                        reason: format!("case {i} mentions field v{max} outside the layout"),
                    });
                }
            }
        }
        Ok(KaryQuery { name, layout, cases })
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The secret layout.
    pub fn layout(&self) -> &SecretLayout {
        &self.layout
    }

    /// Number of distinct outputs (`cases + 1` for the implicit otherwise).
    pub fn output_count(&self) -> usize {
        self.cases.len() + 1
    }

    /// The output index produced by a concrete secret.
    pub fn output(&self, secret: &Point) -> usize {
        for (i, case) in self.cases.iter().enumerate() {
            if case.eval(secret).unwrap_or(false) {
                return i;
            }
        }
        self.cases.len()
    }

    /// The *effective* predicate of output `i` under first-match semantics: case `i` holds and no
    /// earlier case does (for the final output: no case holds).
    pub fn output_pred(&self, output: usize) -> Pred {
        assert!(output < self.output_count(), "output index out of range");
        let mut conjuncts: Vec<Pred> =
            self.cases[..output.min(self.cases.len())].iter().map(|c| c.clone().negate()).collect();
        if output < self.cases.len() {
            conjuncts.push(self.cases[output].clone());
        }
        Pred::and(conjuncts)
    }
}

impl fmt::Display for KaryQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} outputs)", self.name, self.output_count())
    }
}

/// One abstract-domain element per output of a [`KaryQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct KaryIndSets<D> {
    kind: ApproxKind,
    sets: Vec<D>,
}

impl<D: AbstractDomain> KaryIndSets<D> {
    /// Packages per-output ind. sets.
    pub fn new(kind: ApproxKind, sets: Vec<D>) -> Self {
        KaryIndSets { kind, sets }
    }

    /// Synthesizes the per-output ind. sets of a k-ary query by synthesizing each output's
    /// effective predicate as an ordinary boolean query and keeping its True set.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures.
    pub fn synthesize(
        synth: &mut Synthesizer,
        query: &KaryQuery,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Result<Self, SynthError>
    where
        D: SynthesizeInto,
    {
        let mut sets = Vec::with_capacity(query.output_count());
        for output in 0..query.output_count() {
            let case_query = QueryDef::new(
                format!("{}#{}", query.name(), output),
                query.layout().clone(),
                query.output_pred(output),
            )?;
            let indsets = D::synthesize(synth, &case_query, kind, members)?;
            sets.push(indsets.truthy().clone());
        }
        Ok(KaryIndSets { kind, sets })
    }

    /// The approximation direction.
    pub fn kind(&self) -> ApproxKind {
        self.kind
    }

    /// The per-output ind. sets.
    pub fn sets(&self) -> &[D] {
        &self.sets
    }

    /// The posterior knowledge for every possible output, given the prior.
    pub fn posterior(&self, prior: &D) -> Vec<D> {
        self.sets.iter().map(|s| prior.intersect(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnosySession, MinSizePolicy};
    use anosy_domains::PowersetDomain;
    use anosy_ifc::Protected;
    use anosy_logic::IntExpr;
    use anosy_solver::SolverConfig;
    use anosy_synth::SynthConfig;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("age", 0, 120).build()
    }

    /// Age bands: minor (< 18), adult (< 65), otherwise senior.
    fn age_bands() -> KaryQuery {
        KaryQuery::new("age_band", layout(), vec![IntExpr::var(0).lt(18), IntExpr::var(0).lt(65)])
            .unwrap()
    }

    #[test]
    fn outputs_follow_first_match_semantics() {
        let q = age_bands();
        assert_eq!(q.output_count(), 3);
        assert_eq!(q.output(&Point::new(vec![3])), 0);
        assert_eq!(q.output(&Point::new(vec![30])), 1);
        assert_eq!(q.output(&Point::new(vec![80])), 2);
        // Effective predicates partition the space.
        let space = layout().space();
        for p in space.points() {
            let matching: Vec<usize> =
                (0..q.output_count()).filter(|&i| q.output_pred(i).eval(&p).unwrap()).collect();
            assert_eq!(matching, vec![q.output(&p)], "at {p}");
        }
    }

    #[test]
    fn construction_is_validated() {
        assert!(KaryQuery::new("empty", layout(), vec![]).is_err());
        assert!(KaryQuery::new("bad", layout(), vec![IntExpr::var(3).le(0)]).is_err());
    }

    #[test]
    fn synthesized_kary_indsets_give_sound_posteriors() {
        let q = age_bands();
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        let ind: KaryIndSets<PowersetDomain> =
            KaryIndSets::synthesize(&mut synth, &q, ApproxKind::Under, Some(2)).unwrap();
        assert_eq!(ind.sets().len(), 3);
        assert_eq!(ind.kind(), ApproxKind::Under);
        // Every point of every synthesized set really produces that output.
        for (i, set) in ind.sets().iter().enumerate() {
            for p in layout().space().points() {
                if set.contains(&p) {
                    assert_eq!(q.output(&p), i, "point {p} in set {i}");
                }
            }
        }
        // Posteriors refine the prior.
        let prior = PowersetDomain::top(&layout());
        let posts = ind.posterior(&prior);
        assert_eq!(posts.len(), 3);
        assert!(posts.iter().all(|d| d.size() <= prior.size()));
    }

    #[test]
    fn kary_downgrade_enforces_the_policy_on_every_output() {
        let q = age_bands();
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        let ind: KaryIndSets<PowersetDomain> =
            KaryIndSets::synthesize(&mut synth, &q, ApproxKind::Under, Some(2)).unwrap();

        // Permissive policy: all three outputs keep at least 10 candidates, so the downgrade runs.
        let mut session: AnosySession<PowersetDomain> =
            AnosySession::new(layout(), MinSizePolicy::new(10));
        session.register_kary(q.clone(), ind.clone());
        let secret = Protected::new(Point::new(vec![70]));
        assert_eq!(session.downgrade_kary(&secret, "age_band").unwrap(), 2);
        assert!(session.knowledge_of(&Point::new(vec![70])).size() <= 121);

        // Strict policy: the minor band has only 18 candidates, so the query is refused for
        // everyone — even secrets that would fall in a large band.
        let mut strict: AnosySession<PowersetDomain> =
            AnosySession::new(layout(), MinSizePolicy::new(20));
        strict.register_kary(q, ind);
        let adult = Protected::new(Point::new(vec![30]));
        assert!(strict.downgrade_kary(&adult, "age_band").is_err());
        assert!(matches!(
            strict.downgrade_kary(&adult, "missing"),
            Err(crate::AnosyError::UnknownQuery { .. })
        ));
    }

    #[test]
    fn display_reports_output_count() {
        assert_eq!(age_bands().to_string(), "age_band (3 outputs)");
    }
}
