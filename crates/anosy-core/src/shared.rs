//! The deployment-shared synthesis cache: one term store + one synthesis cache for *all*
//! sessions of a deployment.
//!
//! A single [`crate::AnosySession`] already avoids re-synthesizing a query it has seen before.
//! Under the serving pattern — thousands of sessions, each registering the same query set — the
//! per-session cache still synthesizes once *per session*. [`SharedSynthCache`] hoists the term
//! store and the synthesis cache behind an [`Arc`], so synthesis happens once per **deployment**:
//!
//! * the [`TermStore`] lives behind an [`RwLock`]; interning (the only write) is serialized,
//!   everything else reads;
//! * synthesis results are cached under the canonical key `(interned predicate, layout,
//!   direction, members)` with **single-flight** semantics: when several sessions race to
//!   register the same uncached query, exactly one runs the synthesize-and-verify pipeline and
//!   the rest block until the result is published (a failed or panicked attempt releases the
//!   slot, so a waiter retries — the same retry a sequential caller would perform);
//! * aggregate counters ([`SharedCacheStats`]) fold every session's hits/misses and
//!   authorize/refuse outcomes into one deployment-wide observability block.
//!
//! Sessions join a shared cache via [`crate::AnosySession::with_shared`]; the `anosy-serve`
//! crate wraps this type into a full deployment (worker pool, batched downgrades, warm-start
//! persistence).

use crate::AnosyError;
use anosy_domains::AbstractDomain;
use anosy_logic::{Pred, PredId, SecretLayout, StoreStats, TermStore};
use anosy_synth::{ApproxKind, IndSets, QueryDef};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

/// Key of a synthesis cache: the canonical (interned) query predicate, the layout it ranges
/// over, the approximation direction and the powerset member budget. The query *name* is
/// deliberately absent — two differently-named registrations of the same predicate share one
/// synthesis.
pub(crate) type SynthCacheKey = (PredId, SecretLayout, ApproxKind, Option<usize>);

/// A cached synthesis result together with the metadata needed to persist and re-load it
/// (the interned key alone is not portable across stores, so the canonical predicate tree is
/// retained).
#[derive(Debug, Clone)]
pub struct SharedCacheEntry<D: AbstractDomain> {
    /// The canonical query predicate (tree form, for persistence and display).
    pub pred: Pred,
    /// The secret layout the query ranges over.
    pub layout: SecretLayout,
    /// The approximation direction.
    pub kind: ApproxKind,
    /// The powerset member budget (`None` for interval-domain entries).
    pub members: Option<usize>,
    /// The synthesized (and verified) indistinguishability sets.
    pub indsets: IndSets<D>,
}

enum SlotState<D: AbstractDomain> {
    /// Some session is currently synthesizing this entry; waiters block on the condvar.
    InFlight,
    /// The synthesized and verified result.
    Ready(SharedCacheEntry<D>),
}

#[derive(Debug, Default)]
struct Counters {
    synth_hits: AtomicU64,
    synth_misses: AtomicU64,
    downgrades_authorized: AtomicU64,
    downgrades_refused: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    warm_loaded: AtomicU64,
}

/// A point-in-time snapshot of a deployment's aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Registrations (across all sessions) answered from the shared cache — including those that
    /// waited on an in-flight synthesis instead of starting their own.
    pub synth_hits: u64,
    /// Registrations that ran the full synthesize-and-verify pipeline.
    pub synth_misses: u64,
    /// Downgrades authorized across all sessions of the deployment.
    pub downgrades_authorized: u64,
    /// Downgrades refused by a policy across all sessions of the deployment.
    pub downgrades_refused: u64,
    /// Sessions opened against this shared cache.
    pub sessions_opened: u64,
    /// Sessions since torn down (dropped, closed by a frontend, or released by a dying
    /// connection). `sessions_opened - sessions_closed` is the number currently live, so a
    /// serving transport that leaks sessions on connection drop shows up here.
    pub sessions_closed: u64,
    /// Entries loaded from a warm-start snapshot rather than synthesized.
    pub warm_loaded: u64,
}

impl SharedCacheStats {
    /// Fraction of registrations served from the cache, in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.synth_hits + self.synth_misses;
        if total == 0 {
            0.0
        } else {
            self.synth_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for SharedCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions ({} closed): {} synth hits / {} misses ({} warm-loaded), \
             {} downgrades authorized, {} refused",
            self.sessions_opened,
            self.sessions_closed,
            self.synth_hits,
            self.synth_misses,
            self.warm_loaded,
            self.downgrades_authorized,
            self.downgrades_refused
        )
    }
}

/// A hook invoked with every entry the single-flight path commits (see
/// [`SharedSynthCache::set_commit_observer`]).
pub type CommitObserver<D> = Arc<dyn Fn(&SharedCacheEntry<D>) + Send + Sync>;

struct Inner<D: AbstractDomain> {
    store: RwLock<TermStore>,
    slots: Mutex<HashMap<SynthCacheKey, SlotState<D>>>,
    ready: Condvar,
    counters: Counters,
    observer: Mutex<Option<CommitObserver<D>>>,
}

/// The deployment-shared term store and synthesis cache (see the module docs above).
///
/// Cloning is cheap and shares the same underlying state — hand one clone to every session of
/// the deployment.
pub struct SharedSynthCache<D: AbstractDomain> {
    inner: Arc<Inner<D>>,
}

impl<D: AbstractDomain> Clone for SharedSynthCache<D> {
    fn clone(&self) -> Self {
        SharedSynthCache { inner: Arc::clone(&self.inner) }
    }
}

impl<D: AbstractDomain> fmt::Debug for SharedSynthCache<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSynthCache")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<D: AbstractDomain> Default for SharedSynthCache<D> {
    fn default() -> Self {
        SharedSynthCache::new()
    }
}

/// Recovers the guarded data of a poisoned lock: a panic in one session (e.g. inside a
/// synthesizer) must not wedge the whole deployment, and every critical section here leaves the
/// map in a consistent state (in-flight slots are rolled back by [`InFlightGuard`]).
fn recover<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Rolls an in-flight slot back if the synthesis closure fails or panics, so waiting sessions
/// wake up and retry instead of blocking forever.
struct InFlightGuard<'a, D: AbstractDomain> {
    inner: &'a Inner<D>,
    key: Option<SynthCacheKey>,
}

impl<D: AbstractDomain> Drop for InFlightGuard<'_, D> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            recover(self.inner.slots.lock()).remove(&key);
            self.inner.ready.notify_all();
        }
    }
}

impl<D: AbstractDomain> SharedSynthCache<D> {
    /// Creates an empty shared cache with a fresh term store.
    pub fn new() -> Self {
        SharedSynthCache::with_store(TermStore::new())
    }

    /// Creates an empty shared cache around a caller-configured term store (e.g. one built with
    /// [`TermStore::with_min_memo_depth`] — the deployment layer's `box_memo_min_depth` knob).
    pub fn with_store(store: TermStore) -> Self {
        SharedSynthCache {
            inner: Arc::new(Inner {
                store: RwLock::new(store),
                slots: Mutex::new(HashMap::new()),
                ready: Condvar::new(),
                counters: Counters::default(),
                observer: Mutex::new(None),
            }),
        }
    }

    /// Installs a commit observer: a hook called with every entry the single-flight synthesis
    /// path publishes, *after* the entry is visible to waiters. Warm-start inserts
    /// ([`SharedSynthCache::insert_ready`]) do **not** fire the hook — they originate from a
    /// snapshot that already persists the entry. The serving layer uses this to append each
    /// freshly synthesized entry to its durability journal; the ordering (publish, then
    /// observe) is what lets a journal compaction that snapshots the cache under a lock held
    /// across both steps never lose an entry (a racing commit is either in the snapshot or
    /// appends after the truncation — possibly both, and replay tolerates duplicates).
    pub fn set_commit_observer(
        &self,
        observer: impl Fn(&SharedCacheEntry<D>) + Send + Sync + 'static,
    ) {
        *recover(self.inner.observer.lock()) = Some(Arc::new(observer));
    }

    /// Removes the commit observer installed by [`SharedSynthCache::set_commit_observer`].
    pub fn clear_commit_observer(&self) {
        *recover(self.inner.observer.lock()) = None;
    }

    /// Interns a predicate into the shared store (the only store write; serialized by the
    /// `RwLock`).
    pub fn intern_pred(&self, pred: &Pred) -> PredId {
        recover(self.inner.store.write()).intern_pred(pred)
    }

    /// A snapshot of the shared term store (for seeding parallel solver shards). Ids interned
    /// before the call remain valid in the snapshot.
    pub fn store_snapshot(&self) -> TermStore {
        recover(self.inner.store.read()).snapshot()
    }

    /// Hit/miss counters of the shared term store.
    pub fn store_stats(&self) -> StoreStats {
        recover(self.inner.store.read()).stats()
    }

    /// Number of synthesized entries currently cached (in-flight slots excluded).
    pub fn len(&self) -> usize {
        recover(self.inner.slots.lock())
            .values()
            .filter(|slot| matches!(slot, SlotState::Ready(_)))
            .count()
    }

    /// Returns `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the deployment-wide counters.
    pub fn stats(&self) -> SharedCacheStats {
        let c = &self.inner.counters;
        SharedCacheStats {
            synth_hits: c.synth_hits.load(Ordering::Relaxed),
            synth_misses: c.synth_misses.load(Ordering::Relaxed),
            downgrades_authorized: c.downgrades_authorized.load(Ordering::Relaxed),
            downgrades_refused: c.downgrades_refused.load(Ordering::Relaxed),
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: c.sessions_closed.load(Ordering::Relaxed),
            warm_loaded: c.warm_loaded.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_session_opened(&self) {
        self.inner.counters.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_session_closed(&self) {
        self.inner.counters.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_downgrade(&self, authorized: bool) {
        if authorized {
            self.note_downgrades(1, 0);
        } else {
            self.note_downgrades(0, 1);
        }
    }

    /// Bulk form of [`SharedSynthCache::note_downgrade`] — one atomic add per non-zero counter,
    /// so a 200k-secret batch commit costs O(distinct secrets), not O(downgrades).
    pub(crate) fn note_downgrades(&self, authorized: u64, refused: u64) {
        if authorized > 0 {
            self.inner.counters.downgrades_authorized.fetch_add(authorized, Ordering::Relaxed);
        }
        if refused > 0 {
            self.inner.counters.downgrades_refused.fetch_add(refused, Ordering::Relaxed);
        }
    }

    /// The canonical cache key of a registration.
    fn key_for(&self, query: &QueryDef, kind: ApproxKind, members: Option<usize>) -> SynthCacheKey {
        (self.intern_pred(query.pred()), query.layout().clone(), kind, members)
    }

    /// Returns the cached ind. sets for the query, synthesizing them with `synthesize` exactly
    /// once per deployment if absent. The boolean is `true` for a cache hit (including waiting
    /// out another session's in-flight synthesis — no solver work happened on this call).
    ///
    /// # Errors
    ///
    /// Propagates the error of `synthesize` (only for the caller that actually ran it; waiters
    /// retry and may become the synthesizer themselves).
    pub fn get_or_synthesize(
        &self,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
        synthesize: impl FnOnce() -> Result<IndSets<D>, AnosyError>,
    ) -> Result<(IndSets<D>, bool), AnosyError> {
        let key = self.key_for(query, kind, members);
        let mut slots: MutexGuard<'_, _> = recover(self.inner.slots.lock());
        loop {
            match slots.get(&key) {
                Some(SlotState::Ready(entry)) => {
                    self.inner.counters.synth_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry.indsets.clone(), true));
                }
                Some(SlotState::InFlight) => {
                    slots = recover(self.inner.ready.wait(slots));
                }
                None => break,
            }
        }
        slots.insert(key.clone(), SlotState::InFlight);
        self.inner.counters.synth_misses.fetch_add(1, Ordering::Relaxed);
        drop(slots);

        // Synthesis runs with no lock held; the guard rolls the slot back on error or panic.
        let mut guard = InFlightGuard { inner: &self.inner, key: Some(key.clone()) };
        let indsets = {
            let _span = anosy_telemetry::span("synth.single_flight");
            synthesize()?
        };
        guard.key = None; // publication below supersedes the rollback
        let entry = SharedCacheEntry {
            pred: query.pred().clone(),
            layout: query.layout().clone(),
            kind,
            members,
            indsets: indsets.clone(),
        };
        let observer = recover(self.inner.observer.lock()).clone();
        if let Some(observer) = observer {
            // Publish first, then observe: a compaction that locks its journal and *then*
            // snapshots the cache sees either the published entry (in the snapshot) or the
            // observer's append landing after the truncation — never neither.
            recover(self.inner.slots.lock()).insert(key, SlotState::Ready(entry.clone()));
            self.inner.ready.notify_all();
            observer(&entry);
        } else {
            recover(self.inner.slots.lock()).insert(key, SlotState::Ready(entry));
            self.inner.ready.notify_all();
        }
        Ok((indsets, false))
    }

    /// Returns the cached ind. sets for the query **without ever synthesizing**: `None` when the
    /// key has no published entry. An in-flight synthesis by another session is waited out (the
    /// result is about to exist; returning `None` would race), which is why this still counts as
    /// a hit when it returns `Some`. This is the lookup behind cache-only session registration
    /// ([`crate::AnosySession::register_cached`]) — the serving frontend's way of fanning one
    /// deployment-level synthesis out to its sessions.
    pub fn get_ready(
        &self,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Option<IndSets<D>> {
        let key = self.key_for(query, kind, members);
        let mut slots = recover(self.inner.slots.lock());
        loop {
            match slots.get(&key) {
                Some(SlotState::Ready(entry)) => {
                    self.inner.counters.synth_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry.indsets.clone());
                }
                Some(SlotState::InFlight) => {
                    slots = recover(self.inner.ready.wait(slots));
                }
                None => return None,
            }
        }
    }

    /// Whether the key already has an entry (no counters move). In-flight synthesis counts as
    /// present: the result is about to be published, and it would win over a warm-start insert
    /// anyway. This is the pre-check that lets a verified warm start skip re-verifying entries
    /// the deployment already holds.
    pub fn contains(&self, query: &QueryDef, kind: ApproxKind, members: Option<usize>) -> bool {
        let key = self.key_for(query, kind, members);
        recover(self.inner.slots.lock()).contains_key(&key)
    }

    /// Inserts an already-synthesized (and, by contract, already-verified) entry, e.g. from a
    /// warm-start snapshot. Returns `false` when an entry for the same key already exists (the
    /// existing entry wins — a freshly synthesized result is never clobbered by a stale disk
    /// cache).
    pub fn insert_ready(&self, entry: SharedCacheEntry<D>) -> bool {
        let query = match QueryDef::new("warm", entry.layout.clone(), entry.pred.clone()) {
            Ok(q) => q,
            Err(_) => return false,
        };
        let key = self.key_for(&query, entry.kind, entry.members);
        let mut slots = recover(self.inner.slots.lock());
        match slots.get(&key) {
            Some(SlotState::Ready(_)) | Some(SlotState::InFlight) => false,
            None => {
                slots.insert(key, SlotState::Ready(entry));
                self.inner.counters.warm_loaded.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// The cached entries, in a deterministic order (for persistence). In-flight slots are
    /// skipped.
    pub fn export_entries(&self) -> Vec<SharedCacheEntry<D>> {
        let slots = recover(self.inner.slots.lock());
        let mut entries: Vec<SharedCacheEntry<D>> = slots
            .values()
            .filter_map(|slot| match slot {
                SlotState::Ready(entry) => Some(entry.clone()),
                SlotState::InFlight => None,
            })
            .collect();
        entries.sort_by(|a, b| {
            let ka = (a.pred.to_string(), format!("{:?}", a.layout), format!("{:?}", a.kind));
            let kb = (b.pred.to_string(), format!("{:?}", b.layout), format!("{:?}", b.kind));
            ka.cmp(&kb).then(a.members.cmp(&b.members))
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::IntervalDomain;
    use anosy_logic::IntExpr;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn query(xo: i64) -> QueryDef {
        let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new(format!("nearby_{xo}"), layout(), pred).unwrap()
    }

    fn fake_indsets() -> IndSets<IntervalDomain> {
        IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![
                anosy_domains::AInt::new(150, 250),
                anosy_domains::AInt::new(150, 250),
            ]),
            IntervalDomain::from_intervals(vec![
                anosy_domains::AInt::new(0, 400),
                anosy_domains::AInt::new(0, 99),
            ]),
        )
    }

    #[test]
    fn single_flight_under_contention() {
        let cache: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        let synth_runs = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..8 {
                let cache = cache.clone();
                let synth_runs = &synth_runs;
                scope.spawn(move || {
                    let (ind, _) = cache
                        .get_or_synthesize(&query(200), ApproxKind::Under, None, || {
                            synth_runs.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters really do pile up in-flight.
                            thread::sleep(std::time::Duration::from_millis(20));
                            Ok(fake_indsets())
                        })
                        .unwrap();
                    assert_eq!(ind, fake_indsets());
                });
            }
        });
        assert_eq!(synth_runs.load(Ordering::SeqCst), 1, "synthesis must run exactly once");
        let stats = cache.stats();
        assert_eq!(stats.synth_misses, 1);
        assert_eq!(stats.synth_hits, 7);
        assert!((stats.hit_ratio() - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_synthesis_releases_the_slot_for_retry() {
        let cache: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        let err = cache
            .get_or_synthesize(&query(200), ApproxKind::Under, None, || {
                Err(AnosyError::SecretOutsideLayout)
            })
            .unwrap_err();
        assert_eq!(err, AnosyError::SecretOutsideLayout);
        assert!(cache.is_empty());
        // The slot is free again: the next caller synthesizes.
        let (_, hit) = cache
            .get_or_synthesize(&query(200), ApproxKind::Under, None, || Ok(fake_indsets()))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_canonicalize_on_the_interned_predicate() {
        let cache: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        cache
            .get_or_synthesize(&query(200), ApproxKind::Under, None, || Ok(fake_indsets()))
            .unwrap();
        // Same predicate, different name: a hit.
        let renamed = QueryDef::new("other_name", layout(), query(200).pred().clone()).unwrap();
        let (_, hit) = cache
            .get_or_synthesize(&renamed, ApproxKind::Under, None, || {
                panic!("must not resynthesize")
            })
            .unwrap();
        assert!(hit);
        // Different direction: a distinct entry.
        cache
            .get_or_synthesize(&query(200), ApproxKind::Over, None, || Ok(fake_indsets()))
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn warm_entries_count_and_never_clobber() {
        let cache: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        let entry = SharedCacheEntry {
            pred: query(200).pred().clone(),
            layout: layout(),
            kind: ApproxKind::Under,
            members: None,
            indsets: fake_indsets(),
        };
        assert!(cache.insert_ready(entry.clone()));
        assert!(!cache.insert_ready(entry), "duplicate warm insert is refused");
        assert_eq!(cache.stats().warm_loaded, 1);
        let (_, hit) = cache
            .get_or_synthesize(&query(200), ApproxKind::Under, None, || {
                panic!("warm entry must serve this")
            })
            .unwrap();
        assert!(hit);
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].indsets, fake_indsets());
    }

    #[test]
    fn export_order_is_deterministic() {
        let cache: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        for xo in [300, 100, 200] {
            cache
                .get_or_synthesize(&query(xo), ApproxKind::Under, None, || Ok(fake_indsets()))
                .unwrap();
        }
        let a: Vec<String> = cache.export_entries().iter().map(|e| e.pred.to_string()).collect();
        let b: Vec<String> = cache.export_entries().iter().map(|e| e.pred.to_string()).collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
    }

    #[test]
    fn get_ready_is_lookup_only() {
        let cache: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        assert_eq!(cache.get_ready(&query(200), ApproxKind::Under, None), None);
        assert_eq!(cache.stats().synth_hits, 0, "a miss is not a hit and never synthesizes");
        cache
            .get_or_synthesize(&query(200), ApproxKind::Under, None, || Ok(fake_indsets()))
            .unwrap();
        assert_eq!(
            cache.get_ready(&query(200), ApproxKind::Under, None),
            Some(fake_indsets()),
            "published entries are returned"
        );
        assert_eq!(cache.stats().synth_hits, 1);
        // A different direction is a different key.
        assert_eq!(cache.get_ready(&query(200), ApproxKind::Over, None), None);
    }

    #[test]
    fn with_store_carries_the_configured_term_store() {
        let store = anosy_logic::TermStore::with_min_memo_depth(3);
        let cache: SharedSynthCache<IntervalDomain> = SharedSynthCache::with_store(store);
        assert_eq!(cache.store_snapshot().min_memo_depth(), 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedSynthCache<IntervalDomain>>();
        assert_send_sync::<SharedCacheStats>();
    }
}
