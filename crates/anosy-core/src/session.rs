//! The `AnosyT` analogue: a session tracking knowledge across bounded downgrades (Fig. 2).

use crate::shared::{SharedSynthCache, SynthCacheKey};
use crate::{AnosyError, KaryIndSets, KaryQuery, Knowledge, Policy, QInfo};
use anosy_domains::{AbstractDomain, IntervalDomain, PowersetDomain, Secret};
use anosy_ifc::{Label, Labeled, Lio, Protected, Unprotect};
use anosy_logic::{Point, SecretLayout, StoreStats, TermStore};
use anosy_solver::SolverConfig;
use anosy_synth::{ApproxKind, IndSets, QueryDef, SynthError, Synthesizer};
use anosy_verify::Verifier;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Counters accumulated by an [`AnosySession`] across registrations and downgrades.
///
/// The synthesis-cache counters are the serving-path metric: under the
/// millions-of-users pattern (many sessions repeatedly registering and downgrading the same
/// query set) every hit means an entire synthesize-and-verify pipeline — solver searches
/// included — was skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// `register_synthesized` calls answered from the synthesis cache (no solver work at all).
    pub synth_cache_hits: u64,
    /// `register_synthesized` calls that ran the full synthesize-and-verify pipeline.
    pub synth_cache_misses: u64,
    /// Downgrades that were authorized and executed.
    pub downgrades_authorized: u64,
    /// Downgrades refused by the policy (before query execution, per §3).
    pub downgrades_refused: u64,
}

impl SessionStats {
    /// Fraction of `register_synthesized` calls served from the cache, in `[0, 1]`.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.synth_cache_hits + self.synth_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.synth_cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cache hits / {} misses, {} downgrades authorized, {} refused",
            self.synth_cache_hits,
            self.synth_cache_misses,
            self.downgrades_authorized,
            self.downgrades_refused
        )
    }
}

/// Where a session's term store and synthesis cache live.
///
/// The default is [`SynthBacking::Owned`]: the session is self-contained, exactly as before the
/// deployment layer existed. [`SynthBacking::Shared`] instead borrows a deployment-wide
/// [`SharedSynthCache`] via [`Arc`], so every session of the deployment shares one store and one
/// synthesis cache — the millions-of-users configuration.
enum SynthBacking<D: AbstractDomain> {
    Owned {
        /// The session's private hash-consed term store (boxed: the arena struct is large and
        /// the shared variant is a pointer).
        store: Box<TermStore>,
        /// Already-synthesized (and verified) ind. sets, reused on re-registration.
        cache: HashMap<SynthCacheKey, IndSets<D>>,
    },
    Shared(SharedSynthCache<D>),
}

/// Types that can serve as the secret in a downgrade call by exposing their [`Point`] encoding.
pub trait AsSecretPoint {
    /// The point encoding of the secret in its declared layout.
    fn as_secret_point(&self) -> Point;
}

impl AsSecretPoint for Point {
    fn as_secret_point(&self) -> Point {
        self.clone()
    }
}

/// Abstract domains the synthesizer can target directly; lets a session registered over either
/// domain drive synthesis generically.
pub trait SynthesizeInto: AbstractDomain {
    /// Synthesizes the ind. sets of `query` in this domain. `members` is the powerset size `k`
    /// for powerset targets and is ignored by the interval domain.
    fn synthesize(
        synth: &mut Synthesizer,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Result<IndSets<Self>, SynthError>;
}

impl SynthesizeInto for IntervalDomain {
    fn synthesize(
        synth: &mut Synthesizer,
        query: &QueryDef,
        kind: ApproxKind,
        _members: Option<usize>,
    ) -> Result<IndSets<Self>, SynthError> {
        synth.synth_interval(query, kind)
    }
}

impl SynthesizeInto for PowersetDomain {
    fn synthesize(
        synth: &mut Synthesizer,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Result<IndSets<Self>, SynthError> {
        synth.synth_powerset(query, kind, members.unwrap_or(3))
    }
}

/// A declassification session: the state of the `AnosyT` monad transformer.
///
/// The session owns the quantitative [`Policy`], the map from secrets to their currently tracked
/// knowledge and the map from query names to their [`QInfo`]. Downgrades refine the knowledge and
/// are refused — *before the query is executed* — when either possible posterior would violate
/// the policy, so the refusal itself leaks nothing about the secret (§3).
pub struct AnosySession<D: AbstractDomain> {
    layout: SecretLayout,
    policy: Arc<dyn Policy<D> + Send + Sync>,
    secrets: HashMap<Point, Knowledge<D>>,
    queries: BTreeMap<String, QInfo<D>>,
    kary_queries: BTreeMap<String, (KaryQuery, KaryIndSets<D>)>,
    /// The session's term store and synthesis cache — private, or shared across a deployment.
    backing: SynthBacking<D>,
    stats: SessionStats,
}

impl<D: AbstractDomain> AnosySession<D> {
    /// Creates a self-contained session for secrets of the given layout, enforcing `policy`.
    /// The session owns its term store and synthesis cache.
    pub fn new(layout: SecretLayout, policy: impl Policy<D> + Send + Sync + 'static) -> Self {
        AnosySession {
            layout,
            policy: Arc::new(policy),
            secrets: HashMap::new(),
            queries: BTreeMap::new(),
            kary_queries: BTreeMap::new(),
            backing: SynthBacking::Owned {
                store: Box::new(TermStore::new()),
                cache: HashMap::new(),
            },
            stats: SessionStats::default(),
        }
    }

    /// Creates a session that shares a deployment-wide term store and synthesis cache (see
    /// [`SharedSynthCache`]): registrations of a query any session of the deployment has already
    /// synthesized are cache hits, and the deployment's aggregate counters fold in this
    /// session's outcomes.
    pub fn with_shared(
        layout: SecretLayout,
        policy: impl Policy<D> + Send + Sync + 'static,
        shared: SharedSynthCache<D>,
    ) -> Self {
        shared.note_session_opened();
        AnosySession {
            layout,
            policy: Arc::new(policy),
            secrets: HashMap::new(),
            queries: BTreeMap::new(),
            kary_queries: BTreeMap::new(),
            backing: SynthBacking::Shared(shared),
            stats: SessionStats::default(),
        }
    }

    /// The declared secret space.
    pub fn layout(&self) -> &SecretLayout {
        &self.layout
    }

    /// Counters accumulated since construction (cache hits/misses, downgrade outcomes).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The session's private term store, or `None` when the session shares a deployment store
    /// (use [`AnosySession::store_stats`] and the deployment's own accessors in that case).
    pub fn store(&self) -> Option<&TermStore> {
        match &self.backing {
            SynthBacking::Owned { store, .. } => Some(store),
            SynthBacking::Shared(_) => None,
        }
    }

    /// Hit/miss counters of the term store this session interns into (private or shared).
    pub fn store_stats(&self) -> StoreStats {
        match &self.backing {
            SynthBacking::Owned { store, .. } => store.stats(),
            SynthBacking::Shared(shared) => shared.store_stats(),
        }
    }

    /// Returns the deployment-shared cache this session registers through, if any.
    pub fn shared_cache(&self) -> Option<&SharedSynthCache<D>> {
        match &self.backing {
            SynthBacking::Shared(shared) => Some(shared),
            SynthBacking::Owned { .. } => None,
        }
    }

    /// Number of distinct `(query, direction, members)` synthesis results currently cached in
    /// this session's backing (deployment-wide for shared sessions).
    pub fn synth_cache_len(&self) -> usize {
        match &self.backing {
            SynthBacking::Owned { cache, .. } => cache.len(),
            SynthBacking::Shared(shared) => shared.len(),
        }
    }

    /// Name of the enforced policy (for reports and error messages).
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// A cloneable handle on the enforced policy. This is the hook the batched-downgrade driver
    /// uses to run policy checks on worker threads; the policy itself stays immutable.
    pub fn policy_handle(&self) -> Arc<dyn Policy<D> + Send + Sync> {
        Arc::clone(&self.policy)
    }

    /// The registered query with the given name, if any (read access for serving-layer drivers).
    pub fn query_info(&self, name: &str) -> Option<&QInfo<D>> {
        self.queries.get(name)
    }

    /// Registers an already-synthesized (and, by contract, already-verified) query.
    pub fn register(&mut self, qinfo: QInfo<D>) {
        self.queries.insert(qinfo.query().name().to_string(), qinfo);
    }

    /// Registers a query **from the synthesis cache only** — no [`Synthesizer`] involved, no
    /// solver work possible. This is the session handle the serving frontend drives: the
    /// deployment synthesizes a query once (deployment pre-warm or warm start), and every
    /// session registration after that is this pure cache lookup. Works against both backings
    /// (the deployment-shared cache, or an owned session's private cache).
    ///
    /// # Errors
    ///
    /// Returns [`AnosyError::NotSynthesized`] when the `(query predicate, layout, kind,
    /// members)` key has no cached synthesis; nothing is registered in that case.
    pub fn register_cached(
        &mut self,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Result<(), AnosyError> {
        let cached = match &mut self.backing {
            SynthBacking::Owned { store, cache } => {
                let pred_id = store.intern_pred(query.pred());
                cache.get(&(pred_id, query.layout().clone(), kind, members)).cloned()
            }
            SynthBacking::Shared(shared) => shared.get_ready(query, kind, members),
        };
        match cached {
            Some(indsets) => {
                self.stats.synth_cache_hits += 1;
                self.register(QInfo::new(query.clone(), indsets));
                Ok(())
            }
            None => Err(AnosyError::NotSynthesized { name: query.name().to_string() }),
        }
    }

    /// Names of the registered boolean queries.
    pub fn registered_queries(&self) -> Vec<&str> {
        self.queries.keys().map(String::as_str).collect()
    }

    /// Number of secrets currently tracked.
    pub fn tracked_secrets(&self) -> usize {
        self.secrets.len()
    }

    /// The knowledge currently associated with a secret (the initial `⊤` knowledge if the secret
    /// has not been involved in any downgrade yet).
    pub fn knowledge_of(&self, secret: &Point) -> Knowledge<D> {
        self.secrets.get(secret).cloned().unwrap_or_else(|| Knowledge::initial(&self.layout))
    }

    /// Forgets all tracked knowledge (e.g. between experiment runs). Registered queries are kept.
    pub fn reset_knowledge(&mut self) {
        self.secrets.clear();
    }

    /// The bounded downgrade of Fig. 2.
    ///
    /// Looks up the query, computes the posterior knowledge for **both** possible answers from
    /// the tracked prior, checks the policy on both, and only then executes the query on the
    /// (unprotected) secret, records the matching posterior and returns the answer.
    ///
    /// # Errors
    ///
    /// * [`AnosyError::UnknownQuery`] if the query was never registered;
    /// * [`AnosyError::SecretOutsideLayout`] if the secret is not in the declared space;
    /// * [`AnosyError::PolicyViolation`] if either posterior violates the policy — the query is
    ///   **not** executed in that case.
    pub fn downgrade<P>(&mut self, secret: &P, query_name: &str) -> Result<bool, AnosyError>
    where
        P: Unprotect,
        P::Target: AsSecretPoint,
    {
        let qinfo = self
            .queries
            .get(query_name)
            .ok_or_else(|| AnosyError::UnknownQuery { name: query_name.to_string() })?;
        let point = secret.unprotect_tcb().as_secret_point();
        if !self.layout.admits(&point) {
            return Err(AnosyError::SecretOutsideLayout);
        }
        let prior = self.knowledge_of(&point);
        match downgrade_step(self.policy.as_ref(), qinfo, &prior, &point) {
            Ok((response, posterior)) => {
                self.secrets.insert(point, posterior);
                self.note_downgrade_outcome(true);
                Ok(response)
            }
            Err(e) => {
                self.note_downgrade_outcome(false);
                Err(e)
            }
        }
    }

    /// Counts one downgrade outcome in the session stats and, for shared sessions, in the
    /// deployment aggregates.
    fn note_downgrade_outcome(&mut self, authorized: bool) {
        if authorized {
            self.stats.downgrades_authorized += 1;
        } else {
            self.stats.downgrades_refused += 1;
        }
        if let SynthBacking::Shared(shared) = &self.backing {
            shared.note_downgrade(authorized);
        }
    }

    /// Serving-layer commit hook: overwrites the tracked knowledge of a secret and counts the
    /// batched outcomes, exactly as the equivalent sequence of [`AnosySession::downgrade`] calls
    /// would have. `posterior` is `None` when no occurrence in the batch was authorized (the
    /// knowledge map is left untouched, matching the sequential refusal path).
    ///
    /// The decisions themselves must come from [`downgrade_step`] chains over
    /// [`AnosySession::knowledge_of`] priors — this method only applies them, which is why it
    /// carries the workspace's `_tcb` suffix (like [`anosy_ifc::Unprotect::unprotect_tcb`]):
    /// it is part of the trusted computing base, exists for the `anosy-serve` batch driver, and
    /// committing knowledge that did not come from a policy-checked decision breaks the
    /// downgrade soundness argument.
    #[doc(hidden)]
    pub fn commit_batch_outcome_tcb(
        &mut self,
        point: Point,
        posterior: Option<Knowledge<D>>,
        authorized: u64,
        refused: u64,
    ) {
        if let Some(knowledge) = posterior {
            self.secrets.insert(point, knowledge);
        }
        self.stats.downgrades_authorized += authorized;
        self.stats.downgrades_refused += refused;
        if let SynthBacking::Shared(shared) = &self.backing {
            shared.note_downgrades(authorized, refused);
        }
    }

    /// Convenience wrapper for typed secrets defined with
    /// [`anosy_domains::secret_record!`](anosy_domains::secret_record).
    ///
    /// # Errors
    ///
    /// See [`AnosySession::downgrade`].
    pub fn downgrade_secret<S: Secret>(
        &mut self,
        secret: &Protected<S>,
        query_name: &str,
    ) -> Result<bool, AnosyError> {
        let point = secret.unprotect_tcb().to_point();
        self.downgrade(&Protected::new(point), query_name)
    }

    /// The bounded downgrade staged over an LIO context: the secret stays labeled, and the
    /// authorized boolean answer is returned as a *public* labeled value (this is the
    /// declassification step — it deliberately does not taint `lio`).
    ///
    /// # Errors
    ///
    /// See [`AnosySession::downgrade`]; additionally propagates [`AnosyError::Ifc`] if the public
    /// result cannot be created under the context's clearance.
    pub fn downgrade_labeled<L: Label>(
        &mut self,
        lio: &mut Lio<L>,
        secret: &Labeled<L, Point>,
        query_name: &str,
    ) -> Result<Labeled<L, bool>, AnosyError> {
        let response = self.downgrade(secret, query_name)?;
        // The answer has been authorized for release: label it public. This is the only place
        // where information crosses the lattice downward, and it is guarded by the policy check.
        let mut declassification_ctx = Lio::new(L::bottom(), lio.clearance());
        let labeled = declassification_ctx.label(L::bottom(), response)?;
        Ok(labeled)
    }

    /// Registers a k-ary query (§5.1 extension) with its synthesized per-output ind. sets.
    pub fn register_kary(&mut self, query: KaryQuery, indsets: KaryIndSets<D>) {
        self.kary_queries.insert(query.name().to_string(), (query, indsets));
    }

    /// Bounded downgrade of a k-ary query: the policy is checked on the posterior of **every**
    /// possible output before the query is executed.
    ///
    /// # Errors
    ///
    /// See [`AnosySession::downgrade`].
    pub fn downgrade_kary<P>(&mut self, secret: &P, query_name: &str) -> Result<usize, AnosyError>
    where
        P: Unprotect,
        P::Target: AsSecretPoint,
    {
        let (query, indsets) = self
            .kary_queries
            .get(query_name)
            .ok_or_else(|| AnosyError::UnknownQuery { name: query_name.to_string() })?;
        let point = secret.unprotect_tcb().as_secret_point();
        if !self.layout.admits(&point) {
            return Err(AnosyError::SecretOutsideLayout);
        }
        let prior = self.knowledge_of(&point);
        let posteriors: Vec<Knowledge<D>> =
            indsets.posterior(prior.domain()).into_iter().map(Knowledge::from_domain).collect();
        if let Some(violating) = posteriors.iter().find(|k| !self.policy.allows(k)) {
            let violation = AnosyError::PolicyViolation {
                query: query_name.to_string(),
                policy: self.policy.name(),
                posterior_true_size: violating.size(),
                posterior_false_size: violating.size(),
            };
            self.note_downgrade_outcome(false);
            return Err(violation);
        }
        let output = query.output(&point);
        self.secrets.insert(point, posteriors[output].clone());
        self.note_downgrade_outcome(true);
        Ok(output)
    }
}

/// Clean teardown: a session leaving scope — closed by a frontend, released when a serving
/// connection drops, or simply dropped — notes its closure in the deployment aggregates, so
/// `sessions_opened - sessions_closed` always reports the number of live sessions. Owned
/// (self-contained) sessions have no deployment to report to and tear down silently.
impl<D: AbstractDomain> Drop for AnosySession<D> {
    fn drop(&mut self) {
        if let SynthBacking::Shared(shared) = &self.backing {
            shared.note_session_closed();
        }
    }
}

/// One pure bounded-downgrade step (the decision half of Fig. 2, with no state change): computes
/// the posterior knowledge for **both** possible answers from `prior`, checks the policy on
/// both, and only if both pass executes the query on `point`, returning the answer together with
/// the matching posterior.
///
/// [`AnosySession::downgrade`] is this step plus the knowledge-map commit; the batched-downgrade
/// driver in `anosy-serve` chains it over a local prior per secret so independent secrets can be
/// decided on worker threads and committed afterwards, with results identical to the sequential
/// path.
///
/// # Errors
///
/// Returns [`AnosyError::PolicyViolation`] when either posterior violates the policy — the query
/// is **not** executed in that case.
pub fn downgrade_step<D: AbstractDomain>(
    policy: &dyn Policy<D>,
    qinfo: &QInfo<D>,
    prior: &Knowledge<D>,
    point: &Point,
) -> Result<(bool, Knowledge<D>), AnosyError> {
    let (post_true, post_false) = qinfo.posterior(prior.domain());
    let knowledge_true = Knowledge::from_domain(post_true);
    let knowledge_false = Knowledge::from_domain(post_false);
    if !(policy.allows(&knowledge_true) && policy.allows(&knowledge_false)) {
        return Err(AnosyError::PolicyViolation {
            query: qinfo.query().name().to_string(),
            policy: policy.name(),
            posterior_true_size: knowledge_true.size(),
            posterior_false_size: knowledge_false.size(),
        });
    }
    let response = qinfo.ask(point);
    let posterior = if response { knowledge_true } else { knowledge_false };
    Ok((response, posterior))
}

impl<D: AbstractDomain + SynthesizeInto> AnosySession<D> {
    /// Synthesizes, verifies and registers a query in one step — the runtime analogue of the
    /// paper's compile-time plugin pass.
    ///
    /// Results are cached per session, keyed by the *interned* query predicate (plus layout,
    /// direction and member budget): re-registering a query whose synthesis is already cached —
    /// the repeated-downgrade serving pattern — skips synthesis, verification and every solver
    /// search, and only re-registers the stored [`QInfo`]. Hits and misses are counted in
    /// [`AnosySession::stats`].
    ///
    /// # Errors
    ///
    /// * [`AnosyError::Synthesis`] if synthesis fails;
    /// * [`AnosyError::VerificationFailed`] if the synthesized approximation does not satisfy its
    ///   refinement specification (this would indicate a synthesizer bug and is never silently
    ///   accepted);
    /// * [`AnosyError::Solver`] if verification itself cannot be completed.
    pub fn register_synthesized(
        &mut self,
        synth: &mut Synthesizer,
        query: &QueryDef,
        kind: ApproxKind,
        members: Option<usize>,
    ) -> Result<(), AnosyError> {
        let indsets = match &mut self.backing {
            SynthBacking::Owned { store, cache } => {
                let pred_id = store.intern_pred(query.pred());
                let key = (pred_id, query.layout().clone(), kind, members);
                if let Some(cached) = cache.get(&key) {
                    self.stats.synth_cache_hits += 1;
                    let cached = cached.clone();
                    self.register(QInfo::new(query.clone(), cached));
                    return Ok(());
                }
                self.stats.synth_cache_misses += 1;
                let indsets =
                    synthesize_and_verify(synth, query, kind, members, SolverConfig::default())?;
                cache.insert(key, indsets.clone());
                indsets
            }
            SynthBacking::Shared(shared) => {
                let (indsets, was_hit) = shared.get_or_synthesize(query, kind, members, || {
                    synthesize_and_verify(synth, query, kind, members, SolverConfig::default())
                })?;
                if was_hit {
                    self.stats.synth_cache_hits += 1;
                } else {
                    self.stats.synth_cache_misses += 1;
                }
                indsets
            }
        };
        self.register(QInfo::new(query.clone(), indsets));
        Ok(())
    }
}

/// The full synthesize-and-verify pipeline behind a synthesis-cache miss. Public so *every*
/// path that fills a synthesis cache — owned sessions, deployment-shared sessions and
/// `anosy-serve`'s deployment-level pre-warm — runs byte-for-byte the same procedure;
/// `verifier_config` is the solver budget for the verification pass (sessions use
/// [`SolverConfig::default`]).
///
/// # Errors
///
/// See [`AnosySession::register_synthesized`].
pub fn synthesize_and_verify<D: AbstractDomain + SynthesizeInto>(
    synth: &mut Synthesizer,
    query: &QueryDef,
    kind: ApproxKind,
    members: Option<usize>,
    verifier_config: SolverConfig,
) -> Result<IndSets<D>, AnosyError> {
    let indsets = D::synthesize(synth, query, kind, members)?;
    let mut verifier = Verifier::with_config(verifier_config);
    let report = verifier.verify_indsets(query, &indsets)?;
    if !report.is_verified() {
        return Err(AnosyError::VerificationFailed {
            query: query.name().to_string(),
            report: report.to_string(),
        });
    }
    Ok(indsets)
}

impl<D: AbstractDomain> fmt::Debug for AnosySession<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnosySession")
            .field("layout", &self.layout)
            .field("policy", &self.policy.name())
            .field("queries", &self.queries.len())
            .field("kary_queries", &self.kary_queries.len())
            .field("tracked_secrets", &self.secrets.len())
            .field("synth_cache", &self.synth_cache_len())
            .field("shared", &matches!(self.backing, SynthBacking::Shared(_)))
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinSizePolicy;
    use anosy_domains::{secret_record, AInt};
    use anosy_ifc::SecLevel;
    use anosy_logic::{IntExpr, Pred};
    use anosy_synth::SynthConfig;

    fn loc_layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby(xo: i64, yo: i64) -> QueryDef {
        let pred = ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100);
        QueryDef::new(format!("nearby_{xo}_{yo}"), loc_layout(), pred).unwrap()
    }

    /// A session pre-loaded with the paper's hand-written approximation for nearby (200,200) and
    /// synthesized ones for the other origins used in §2/§3.
    fn paper_session() -> AnosySession<IntervalDomain> {
        let mut session = AnosySession::new(loc_layout(), MinSizePolicy::new(100));
        session.register(QInfo::new(
            nearby(200, 200),
            IndSets::new(
                ApproxKind::Under,
                IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
                IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
            ),
        ));
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        for q in [nearby(300, 200), nearby(400, 200)] {
            session.register_synthesized(&mut synth, &q, ApproxKind::Under, None).unwrap();
        }
        session
    }

    #[test]
    fn the_papers_downgrade_walkthrough() {
        // §3: secret = (300, 200); nearby (200,200) and nearby (300,200) are authorized,
        // nearby (400,200) is refused with a policy violation.
        let mut session = paper_session();
        let secret = Protected::new(Point::new(vec![300, 200]));
        assert!(session.downgrade(&secret, "nearby_200_200").unwrap());
        let after_first = session.knowledge_of(&Point::new(vec![300, 200]));
        assert_eq!(after_first.size(), 6837);
        assert!(session.downgrade(&secret, "nearby_300_200").unwrap());
        let after_second = session.knowledge_of(&Point::new(vec![300, 200]));
        assert!(after_second.size() <= after_first.size());
        assert!(after_second.size() > 100);
        let err = session.downgrade(&secret, "nearby_400_200").unwrap_err();
        match err {
            AnosyError::PolicyViolation { query, .. } => assert_eq!(query, "nearby_400_200"),
            other => panic!("expected a policy violation, got {other}"),
        }
        // The refused query did not refine the knowledge.
        assert_eq!(session.knowledge_of(&Point::new(vec![300, 200])).size(), after_second.size());
    }

    #[test]
    fn refusal_is_independent_of_the_secret_value() {
        // The policy check runs on both posteriors before the query executes, so from the same
        // knowledge state (here: the initial ⊤) two secrets that would answer differently get
        // exactly the same authorize/refuse decision.
        let inside = Protected::new(Point::new(vec![300, 200])); // answers true to all three
        let outside = Protected::new(Point::new(vec![10, 10])); // answers false to all three
        for name in ["nearby_200_200", "nearby_300_200", "nearby_400_200"] {
            let mut for_inside = paper_session();
            let mut for_outside = paper_session();
            let a = for_inside.downgrade(&inside, name).is_err();
            let b = for_outside.downgrade(&outside, name).is_err();
            assert_eq!(a, b, "refusal decision differed for {name}");
        }
    }

    #[test]
    fn unknown_queries_and_out_of_space_secrets_are_rejected() {
        let mut session = paper_session();
        let secret = Protected::new(Point::new(vec![300, 200]));
        assert!(matches!(
            session.downgrade(&secret, "does_not_exist"),
            Err(AnosyError::UnknownQuery { .. })
        ));
        let alien = Protected::new(Point::new(vec![9_999, 0]));
        assert!(matches!(
            session.downgrade(&alien, "nearby_200_200"),
            Err(AnosyError::SecretOutsideLayout)
        ));
    }

    #[test]
    fn knowledge_is_tracked_per_secret() {
        let mut session = paper_session();
        let alice = Protected::new(Point::new(vec![300, 200]));
        let bob = Protected::new(Point::new(vec![50, 350]));
        session.downgrade(&alice, "nearby_200_200").unwrap();
        session.downgrade(&bob, "nearby_200_200").unwrap();
        assert_eq!(session.tracked_secrets(), 2);
        // Alice answered true (size 6837), Bob answered false (size 40100).
        assert_eq!(session.knowledge_of(&Point::new(vec![300, 200])).size(), 6837);
        assert_eq!(session.knowledge_of(&Point::new(vec![50, 350])).size(), 401 * 100);
        session.reset_knowledge();
        assert_eq!(session.tracked_secrets(), 0);
        assert_eq!(session.registered_queries().len(), 3);
    }

    #[test]
    fn downgrade_soundness_tracked_knowledge_under_approximates_the_exact_knowledge() {
        // The correctness argument of §3: after every authorized downgrade, the tracked posterior
        // P_i is a subset of the exact attacker knowledge K_i (the secrets consistent with every
        // observed answer). We check P_i ⊆ K_i with the solver: P_i ⇒ ⋀_j (query_j ⇔ answer_j).
        let mut session = paper_session();
        let secret_point = Point::new(vec![260, 170]);
        let secret = Protected::new(secret_point.clone());
        let mut solver = anosy_solver::Solver::with_config(SolverConfig::for_tests());
        let mut observed = Pred::True;
        for (name, origin) in [
            ("nearby_200_200", (200, 200)),
            ("nearby_300_200", (300, 200)),
            ("nearby_400_200", (400, 200)),
        ] {
            let Ok(answer) = session.downgrade(&secret, name) else { continue };
            let query_pred = nearby(origin.0, origin.1).pred().clone();
            let consistent = if answer { query_pred } else { query_pred.negate() };
            observed = observed.and_also(consistent);
            let tracked = session.knowledge_of(&secret_point);
            let obligation = tracked.domain().to_pred().implies(observed.clone());
            assert!(
                solver.is_valid(&obligation, &loc_layout().space()).unwrap(),
                "tracked knowledge is not an under-approximation after {name}"
            );
        }
    }

    secret_record! {
        struct UserLoc {
            x: 0..=400,
            y: 0..=400,
        }
    }

    #[test]
    fn typed_secrets_and_labeled_secrets_are_supported() {
        let mut session = paper_session();
        let typed = Protected::new(UserLoc { x: 300, y: 200 });
        assert!(session.downgrade_secret(&typed, "nearby_200_200").unwrap());

        let mut session = paper_session();
        let mut lio = Lio::new(SecLevel::Public, SecLevel::Secret);
        let labeled = lio.label(SecLevel::Secret, Point::new(vec![300, 200])).unwrap();
        let answer = session.downgrade_labeled(&mut lio, &labeled, "nearby_200_200").unwrap();
        // The declassified answer is public and the ambient context stays untainted.
        assert_eq!(*answer.label(), SecLevel::Public);
        assert!(*answer.peek_tcb());
        assert_eq!(lio.current_label(), SecLevel::Public);
    }

    #[test]
    fn powerset_sessions_allow_more_queries_than_interval_sessions() {
        // The Fig. 6 effect in miniature: with the same policy and query sequence, the powerset
        // domain authorizes at least as many downgrades as the interval domain.
        let origins = [(200, 200), (260, 220), (150, 260), (240, 160), (300, 200)];
        let secret = Protected::new(Point::new(vec![230, 210]));
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));

        let mut interval_session: AnosySession<IntervalDomain> =
            AnosySession::new(loc_layout(), MinSizePolicy::new(100));
        let mut powerset_session: AnosySession<PowersetDomain> =
            AnosySession::new(loc_layout(), MinSizePolicy::new(100));
        for (x, y) in origins {
            let q = nearby(x, y);
            interval_session.register_synthesized(&mut synth, &q, ApproxKind::Under, None).unwrap();
            powerset_session
                .register_synthesized(&mut synth, &q, ApproxKind::Under, Some(3))
                .unwrap();
        }
        let count = |session: &mut dyn FnMut(&str) -> bool| {
            let mut n = 0;
            for (x, y) in origins {
                if session(&format!("nearby_{x}_{y}")) {
                    n += 1;
                } else {
                    break;
                }
            }
            n
        };
        let interval_count = count(&mut |name| interval_session.downgrade(&secret, name).is_ok());
        let powerset_count = count(&mut |name| powerset_session.downgrade(&secret, name).is_ok());
        assert!(powerset_count >= interval_count);
        assert!(powerset_count >= 1);
    }

    #[test]
    fn repeated_registration_is_served_from_the_synthesis_cache() {
        // The millions-of-users serving pattern: the same query is registered (and then
        // downgraded) over and over. After the first synthesis, a repeat registration plus
        // downgrade must perform **zero** new solver work — asserted on the solver's node
        // counter, not just wall-clock.
        let mut session: AnosySession<IntervalDomain> =
            AnosySession::new(loc_layout(), MinSizePolicy::new(100));
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        let query = nearby(200, 200);
        session.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        assert_eq!(session.stats().synth_cache_hits, 0);
        assert_eq!(session.stats().synth_cache_misses, 1);
        let nodes_after_first = synth.solver_stats().nodes_explored;
        assert!(nodes_after_first > 0, "first synthesis must actually search");

        // Second registration of the same query: a cache hit, zero new solver nodes.
        session.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        assert_eq!(session.stats().synth_cache_hits, 1);
        assert_eq!(session.stats().synth_cache_misses, 1);
        assert_eq!(
            synth.solver_stats().nodes_explored,
            nodes_after_first,
            "cached registration must not touch the solver"
        );

        // The downgrade path itself also performs no solver work (posteriors are domain meets).
        let secret = Protected::new(Point::new(vec![300, 200]));
        assert!(session.downgrade(&secret, "nearby_200_200").unwrap());
        assert_eq!(synth.solver_stats().nodes_explored, nodes_after_first);
        assert_eq!(session.stats().downgrades_authorized, 1);
        assert_eq!(session.synth_cache_len(), 1);
        assert!((session.stats().cache_hit_ratio() - 0.5).abs() < 1e-12);

        // A differently-*named* registration of the same predicate still hits: the cache key is
        // the interned predicate, not the name.
        let renamed =
            QueryDef::new("same_diamond_other_name", loc_layout(), query.pred().clone()).unwrap();
        session.register_synthesized(&mut synth, &renamed, ApproxKind::Under, None).unwrap();
        assert_eq!(session.stats().synth_cache_hits, 2);
        assert_eq!(synth.solver_stats().nodes_explored, nodes_after_first);

        // A different direction is a different cache entry.
        session.register_synthesized(&mut synth, &query, ApproxKind::Over, None).unwrap();
        assert_eq!(session.stats().synth_cache_misses, 2);
        assert_eq!(session.synth_cache_len(), 2);
        assert!(session.stats().to_string().contains("cache hits"));
    }

    #[test]
    fn register_cached_never_synthesizes() {
        use crate::SharedSynthCache;
        let query = nearby(200, 200);
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));

        // Owned backing: a cold cache refuses, a warm one registers without solver work.
        let mut owned: AnosySession<IntervalDomain> =
            AnosySession::new(loc_layout(), MinSizePolicy::new(100));
        assert!(matches!(
            owned.register_cached(&query, ApproxKind::Under, None),
            Err(AnosyError::NotSynthesized { .. })
        ));
        assert!(owned.registered_queries().is_empty());
        owned.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        let nodes = synth.solver_stats().nodes_explored;
        owned.register_cached(&query, ApproxKind::Under, None).unwrap();
        assert_eq!(synth.solver_stats().nodes_explored, nodes);
        assert_eq!(owned.stats().synth_cache_hits, 1);

        // Shared backing: a second session registers from the deployment-wide entry, and its
        // downgrades agree with a fully-synthesized session's.
        let shared: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        let mut first: AnosySession<IntervalDomain> =
            AnosySession::with_shared(loc_layout(), MinSizePolicy::new(100), shared.clone());
        assert!(matches!(
            first.register_cached(&query, ApproxKind::Under, None),
            Err(AnosyError::NotSynthesized { .. })
        ));
        first.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        let mut second: AnosySession<IntervalDomain> =
            AnosySession::with_shared(loc_layout(), MinSizePolicy::new(100), shared.clone());
        second.register_cached(&query, ApproxKind::Under, None).unwrap();
        assert_eq!(second.stats().synth_cache_hits, 1);
        let secret = Protected::new(Point::new(vec![300, 200]));
        assert_eq!(
            second.downgrade(&secret, "nearby_200_200").unwrap(),
            first.downgrade(&secret, "nearby_200_200").unwrap()
        );
        assert_eq!(
            second.knowledge_of(&Point::new(vec![300, 200])).size(),
            first.knowledge_of(&Point::new(vec![300, 200])).size()
        );
    }

    #[test]
    fn refusals_are_counted_in_session_stats() {
        let mut session = paper_session();
        let secret = Protected::new(Point::new(vec![300, 200]));
        assert!(session.downgrade(&secret, "nearby_200_200").unwrap());
        assert!(session.downgrade(&secret, "nearby_300_200").unwrap());
        assert!(session.downgrade(&secret, "nearby_400_200").is_err());
        let stats = session.stats();
        assert_eq!(stats.downgrades_authorized, 2);
        assert_eq!(stats.downgrades_refused, 1);
    }

    #[test]
    fn shared_sessions_synthesize_once_per_deployment() {
        use crate::SharedSynthCache;
        let shared: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        let query = nearby(200, 200);
        let secret = Protected::new(Point::new(vec![300, 200]));

        let mut first: AnosySession<IntervalDomain> =
            AnosySession::with_shared(loc_layout(), MinSizePolicy::new(100), shared.clone());
        assert!(first.store().is_none(), "shared sessions have no private store");
        assert!(first.shared_cache().is_some());
        first.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        assert_eq!(first.stats().synth_cache_misses, 1);
        let nodes_after_first = synth.solver_stats().nodes_explored;

        // A *different* session of the same deployment registers the same query: zero solver
        // work, and the answer matches an owned session's downgrade exactly.
        let mut second: AnosySession<IntervalDomain> =
            AnosySession::with_shared(loc_layout(), MinSizePolicy::new(100), shared.clone());
        second.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        assert_eq!(second.stats().synth_cache_hits, 1);
        assert_eq!(second.stats().synth_cache_misses, 0);
        assert_eq!(synth.solver_stats().nodes_explored, nodes_after_first);
        assert!(second.downgrade(&secret, "nearby_200_200").unwrap());

        let mut owned: AnosySession<IntervalDomain> =
            AnosySession::new(loc_layout(), MinSizePolicy::new(100));
        owned.register_synthesized(&mut synth, &query, ApproxKind::Under, None).unwrap();
        assert!(owned.downgrade(&secret, "nearby_200_200").unwrap());
        assert_eq!(
            second.knowledge_of(&Point::new(vec![300, 200])).size(),
            owned.knowledge_of(&Point::new(vec![300, 200])).size(),
            "shared and owned sessions must track identical knowledge"
        );

        // Deployment aggregates fold in both sessions.
        let stats = shared.stats();
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.synth_misses, 1);
        assert_eq!(stats.synth_hits, 1);
        assert_eq!(stats.downgrades_authorized, 1, "owned session downgrades are not counted");
        assert_eq!(second.synth_cache_len(), 1);
        assert!(format!("{second:?}").contains("shared: true"));
        assert!(stats.to_string().contains("synth hits"));
    }

    #[test]
    fn dropped_shared_sessions_note_their_closure() {
        use crate::SharedSynthCache;
        let shared: SharedSynthCache<IntervalDomain> = SharedSynthCache::new();
        {
            let _a: AnosySession<IntervalDomain> =
                AnosySession::with_shared(loc_layout(), MinSizePolicy::new(100), shared.clone());
            let _b: AnosySession<IntervalDomain> =
                AnosySession::with_shared(loc_layout(), MinSizePolicy::new(100), shared.clone());
            assert_eq!(shared.stats().sessions_opened, 2);
            assert_eq!(shared.stats().sessions_closed, 0);
        }
        let stats = shared.stats();
        assert_eq!(stats.sessions_closed, 2, "dropped sessions report their teardown");
        assert!(stats.to_string().contains("(2 closed)"));
        // Owned sessions have no deployment to report to; dropping one is silent everywhere.
        drop(AnosySession::<IntervalDomain>::new(loc_layout(), MinSizePolicy::new(100)));
        assert_eq!(shared.stats().sessions_closed, 2);
    }

    #[test]
    fn downgrade_step_matches_the_session_path() {
        // Chain the pure step over a local prior and compare against the mutating session path
        // on the paper's §3 walkthrough (authorize, authorize, refuse).
        let session = paper_session();
        let policy = session.policy_handle();
        let point = Point::new(vec![300, 200]);
        let mut prior = session.knowledge_of(&point);

        let qinfo = session.query_info("nearby_200_200").unwrap();
        let (answer, posterior) = downgrade_step(policy.as_ref(), qinfo, &prior, &point).unwrap();
        assert!(answer);
        assert_eq!(posterior.size(), 6837);
        prior = posterior;

        let qinfo = session.query_info("nearby_300_200").unwrap();
        let (answer, posterior) = downgrade_step(policy.as_ref(), qinfo, &prior, &point).unwrap();
        assert!(answer);
        prior = posterior;

        let qinfo = session.query_info("nearby_400_200").unwrap();
        let err = downgrade_step(policy.as_ref(), qinfo, &prior, &point).unwrap_err();
        assert!(matches!(err, AnosyError::PolicyViolation { .. }));

        // The session path lands on exactly the same knowledge.
        let mut mutating = paper_session();
        let secret = Protected::new(point.clone());
        mutating.downgrade(&secret, "nearby_200_200").unwrap();
        mutating.downgrade(&secret, "nearby_300_200").unwrap();
        mutating.downgrade(&secret, "nearby_400_200").unwrap_err();
        assert_eq!(mutating.knowledge_of(&point).size(), prior.size());
    }

    #[test]
    fn commit_batch_outcome_mirrors_sequential_bookkeeping() {
        let mut sequential = paper_session();
        let mut batched = paper_session();
        let point = Point::new(vec![300, 200]);
        let secret = Protected::new(point.clone());
        sequential.downgrade(&secret, "nearby_200_200").unwrap();
        sequential.downgrade(&secret, "nearby_400_200").unwrap_err();

        let prior = batched.knowledge_of(&point);
        let qinfo = batched.query_info("nearby_200_200").unwrap();
        let (_, posterior) =
            downgrade_step(batched.policy_handle().as_ref(), qinfo, &prior, &point).unwrap();
        batched.commit_batch_outcome_tcb(point.clone(), Some(posterior), 1, 1);

        assert_eq!(batched.stats(), sequential.stats());
        assert_eq!(batched.knowledge_of(&point).size(), sequential.knowledge_of(&point).size());
    }

    #[test]
    fn debug_formatting_reports_counts_without_leaking_secrets() {
        let mut session = paper_session();
        let secret = Protected::new(Point::new(vec![300, 200]));
        session.downgrade(&secret, "nearby_200_200").unwrap();
        let text = format!("{session:?}");
        assert!(text.contains("tracked_secrets: 1"));
        assert!(text.contains("min-size(100)"));
    }
}
