//! Attacker knowledge and the quantitative measures derived from it (§8 of the paper).

use anosy_domains::AbstractDomain;
use anosy_logic::{Point, SecretLayout};
use std::fmt;

/// The attacker's knowledge about one secret: the set of secrets the attacker still considers
/// possible, represented by an abstract-domain element.
///
/// The knowledge wrapper also exposes the classical quantitative-information-flow measures that
/// the paper lists as further applications (§8) under the uniform-prior reading of knowledge:
/// with `n = size()` possible secrets, Shannon entropy is `log2 n`, Bayes vulnerability is
/// `1 / n`, min-entropy is `log2 n` and guessing entropy is `(n + 1) / 2`.
#[derive(Debug, Clone, PartialEq)]
pub struct Knowledge<D> {
    domain: D,
}

impl<D: AbstractDomain> Knowledge<D> {
    /// The initial knowledge: the attacker only knows the declared secret space (`⊤`).
    pub fn initial(layout: &SecretLayout) -> Self {
        Knowledge { domain: D::top(layout) }
    }

    /// Wraps an existing abstract-domain element.
    pub fn from_domain(domain: D) -> Self {
        Knowledge { domain }
    }

    /// The underlying abstract-domain element.
    pub fn domain(&self) -> &D {
        &self.domain
    }

    /// Consumes the wrapper and returns the abstract-domain element.
    pub fn into_domain(self) -> D {
        self.domain
    }

    /// Number of secrets the attacker still considers possible.
    pub fn size(&self) -> u128 {
        self.domain.size()
    }

    /// Returns `true` when the attacker has excluded every secret (which only happens with
    /// under-approximations that lost all precision — the real knowledge is never empty).
    pub fn is_empty(&self) -> bool {
        self.domain.is_empty()
    }

    /// Returns `true` when the secret is fully determined (at most one candidate left).
    pub fn is_revealed(&self) -> bool {
        self.size() <= 1
    }

    /// Whether the attacker still considers this concrete secret possible.
    pub fn admits(&self, secret: &Point) -> bool {
        self.domain.contains(secret)
    }

    /// Shannon entropy of the uniform distribution over the remaining secrets, in bits.
    pub fn shannon_entropy(&self) -> f64 {
        let n = self.size();
        if n == 0 {
            0.0
        } else {
            (n as f64).log2()
        }
    }

    /// Min-entropy in bits (equals Shannon entropy under the uniform reading).
    pub fn min_entropy(&self) -> f64 {
        self.shannon_entropy()
    }

    /// Bayes vulnerability: the probability that an attacker guessing once guesses the secret.
    pub fn bayes_vulnerability(&self) -> f64 {
        let n = self.size();
        if n == 0 {
            0.0
        } else {
            1.0 / n as f64
        }
    }

    /// Guessing entropy: the expected number of guesses to find the secret.
    pub fn guessing_entropy(&self) -> f64 {
        let n = self.size();
        if n == 0 {
            0.0
        } else {
            (n as f64 + 1.0) / 2.0
        }
    }

    /// Refines the knowledge with another domain element (set intersection), e.g. an ind. set.
    pub fn refine_with(&self, other: &D) -> Knowledge<D> {
        Knowledge { domain: self.domain.intersect(other) }
    }
}

impl<D: AbstractDomain> fmt::Display for Knowledge<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "knowledge of {} secrets ({:.1} bits)", self.size(), self.shannon_entropy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain, PowersetDomain};

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    #[test]
    fn initial_knowledge_is_the_whole_space() {
        let k: Knowledge<IntervalDomain> = Knowledge::initial(&layout());
        assert_eq!(k.size(), 401 * 401);
        assert!(k.admits(&Point::new(vec![300, 200])));
        assert!(!k.is_revealed());
        assert!(!k.is_empty());
    }

    #[test]
    fn entropy_measures_follow_the_size() {
        let one = Knowledge::from_domain(IntervalDomain::from_intervals(vec![AInt::singleton(7)]));
        assert_eq!(one.size(), 1);
        assert!(one.is_revealed());
        assert_eq!(one.shannon_entropy(), 0.0);
        assert_eq!(one.bayes_vulnerability(), 1.0);
        assert_eq!(one.guessing_entropy(), 1.0);

        let kilo = Knowledge::from_domain(IntervalDomain::from_intervals(vec![AInt::new(1, 1024)]));
        assert!((kilo.shannon_entropy() - 10.0).abs() < 1e-9);
        assert!((kilo.bayes_vulnerability() - 1.0 / 1024.0).abs() < 1e-12);
        assert!((kilo.guessing_entropy() - 512.5).abs() < 1e-9);
        assert_eq!(kilo.min_entropy(), kilo.shannon_entropy());

        let empty = Knowledge::from_domain(IntervalDomain::empty(1));
        assert_eq!(empty.shannon_entropy(), 0.0);
        assert_eq!(empty.bayes_vulnerability(), 0.0);
        assert_eq!(empty.guessing_entropy(), 0.0);
        assert!(empty.is_empty() && empty.is_revealed());
    }

    #[test]
    fn refine_with_intersects() {
        let k: Knowledge<PowersetDomain> = Knowledge::initial(&layout());
        let slab = PowersetDomain::from_interval(IntervalDomain::from_intervals(vec![
            AInt::new(121, 279),
            AInt::new(179, 221),
        ]));
        let refined = k.refine_with(&slab);
        assert_eq!(refined.size(), 159 * 43);
        assert!(refined.size() < k.size());
        assert_eq!(refined.clone().into_domain().size(), refined.size());
    }

    #[test]
    fn display_reports_size_and_bits() {
        let k: Knowledge<IntervalDomain> = Knowledge::initial(&layout());
        let text = k.to_string();
        assert!(text.contains("160801"));
        assert!(text.contains("bits"));
    }
}
