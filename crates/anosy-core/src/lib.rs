//! The ANOSY-RS core: knowledge tracking, quantitative declassification policies and the bounded
//! downgrade.
//!
//! This crate is the paper's primary user-facing contribution (§3): a declassification monitor
//! that can be staged on top of an existing IFC system. Its pieces are
//!
//! * [`Knowledge`] — the attacker's knowledge about one secret, an abstract-domain element
//!   enriched with the quantitative measures (§8) policies may constrain: size, Shannon entropy,
//!   Bayes vulnerability and guessing entropy;
//! * [`Policy`] — quantitative declassification policies (`size knowledge > 100`, minimum
//!   residual entropy, conjunctions, custom predicates);
//! * [`QInfo`] — a registered query together with its synthesized and verified knowledge
//!   approximation (the paper's `QInfo` record);
//! * [`AnosySession`] — the `AnosyT` monad-transformer analogue: it owns the policy, the
//!   per-secret knowledge map and the query map, and its [`AnosySession::downgrade`] implements
//!   Fig. 2 — posterior computed for **both** possible answers, policy checked on both, the query
//!   executed only if both pass;
//! * [`KaryQuery`] — the §5.1 extension to queries with finitely many (more than two) outputs.
//!
//! Sessions are built for serving: each [`AnosySession`] owns a hash-consed
//! [`TermStore`](anosy_logic::TermStore) into which registered query predicates are interned,
//! and a **synthesis cache** keyed by `(interned predicate, layout, direction, members)`.
//! Re-registering an already-synthesized query — the pattern of serving the same query set to
//! millions of users — is a cache hit that skips synthesis, verification and every solver
//! search; [`AnosySession::stats`] surfaces the hit/miss and authorize/refuse counters
//! ([`SessionStats`]).
//!
//! # Example
//!
//! ```
//! use anosy_core::{AnosySession, MinSizePolicy};
//! use anosy_domains::PowersetDomain;
//! use anosy_ifc::Protected;
//! use anosy_logic::{IntExpr, Point, SecretLayout};
//! use anosy_synth::{ApproxKind, QueryDef, Synthesizer};
//!
//! let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
//! let nearby = |xo: i64, yo: i64| {
//!     ((IntExpr::var(0) - xo).abs() + (IntExpr::var(1) - yo).abs()).le(100)
//! };
//!
//! // "Compile time": synthesize and register the queries.
//! let mut synth = Synthesizer::new();
//! let mut session: AnosySession<PowersetDomain> =
//!     AnosySession::new(layout.clone(), MinSizePolicy::new(100));
//! for (name, q) in [("near_200_200", nearby(200, 200)), ("near_400_200", nearby(400, 200))] {
//!     let query = QueryDef::new(name, layout.clone(), q).unwrap();
//!     session
//!         .register_synthesized(&mut synth, &query, ApproxKind::Under, Some(3))
//!         .unwrap();
//! }
//!
//! // "Run time": the secret location is (300, 200), as in §2.1 of the paper.
//! let secret = Protected::new(Point::new(vec![300, 200]));
//! assert_eq!(session.downgrade(&secret, "near_200_200").unwrap(), true);
//! // The second query would pin the location down to a single point, so it is refused.
//! assert!(session.downgrade(&secret, "near_400_200").is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod kary;
mod knowledge;
mod policy;
mod qinfo;
mod session;
mod shared;

pub use error::AnosyError;
pub use kary::{KaryIndSets, KaryQuery};
pub use knowledge::Knowledge;
pub use policy::{
    AllowAll, AndPolicy, FnPolicy, MinEntropyPolicy, MinSizePolicy, Policy, PolicySpec,
};
pub use qinfo::QInfo;
pub use session::{
    downgrade_step, synthesize_and_verify, AnosySession, AsSecretPoint, SessionStats,
    SynthesizeInto,
};
pub use shared::{CommitObserver, SharedCacheEntry, SharedCacheStats, SharedSynthCache};
