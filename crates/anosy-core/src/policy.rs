//! Quantitative declassification policies.
//!
//! A policy is a predicate on (approximated) attacker knowledge (§2.1: `qpolicy dom = size dom >
//! 100`). For enforcement through *under*-approximations to be sound, the policy must be
//! monotone: if it accepts a knowledge set it must accept every superset (§3, "the policy should
//! be an increasing function in the size of the input"). All policies provided here are monotone
//! by construction; [`FnPolicy`] documents the obligation for custom predicates.

use crate::Knowledge;
use anosy_domains::AbstractDomain;
use std::fmt;
use std::sync::Arc;

/// A quantitative declassification policy over knowledge represented in domain `D`.
pub trait Policy<D: AbstractDomain>: fmt::Debug {
    /// Returns `true` when the given knowledge is still acceptable (no violation).
    fn allows(&self, knowledge: &Knowledge<D>) -> bool;

    /// A short human-readable name used in error messages and reports.
    fn name(&self) -> String;
}

/// Accepts everything. Useful as a baseline and for measuring "how fast would knowledge shrink
/// without enforcement".
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl<D: AbstractDomain> Policy<D> for AllowAll {
    fn allows(&self, _knowledge: &Knowledge<D>) -> bool {
        true
    }

    fn name(&self) -> String {
        "allow-all".into()
    }
}

/// The paper's `qpolicy`: the knowledge must keep strictly more than `min_size` candidate
/// secrets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinSizePolicy {
    min_size: u128,
}

impl MinSizePolicy {
    /// Requires `size knowledge > min_size`.
    pub fn new(min_size: u128) -> Self {
        MinSizePolicy { min_size }
    }

    /// The threshold.
    pub fn min_size(&self) -> u128 {
        self.min_size
    }
}

impl<D: AbstractDomain> Policy<D> for MinSizePolicy {
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        knowledge.size() > self.min_size
    }

    fn name(&self) -> String {
        format!("min-size({})", self.min_size)
    }
}

/// Requires the residual Shannon entropy (in bits, under the uniform reading) to stay strictly
/// above a threshold — one of the §8 "further applications".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinEntropyPolicy {
    min_bits: f64,
}

impl MinEntropyPolicy {
    /// Requires `shannon_entropy(knowledge) > min_bits`.
    pub fn new(min_bits: f64) -> Self {
        MinEntropyPolicy { min_bits }
    }
}

impl<D: AbstractDomain> Policy<D> for MinEntropyPolicy {
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        knowledge.shannon_entropy() > self.min_bits
    }

    fn name(&self) -> String {
        format!("min-entropy({} bits)", self.min_bits)
    }
}

/// Conjunction of two policies: both must accept.
#[derive(Debug)]
pub struct AndPolicy<P, Q> {
    left: P,
    right: Q,
}

impl<P, Q> AndPolicy<P, Q> {
    /// Requires both `left` and `right` to accept.
    pub fn new(left: P, right: Q) -> Self {
        AndPolicy { left, right }
    }
}

impl<D, P, Q> Policy<D> for AndPolicy<P, Q>
where
    D: AbstractDomain,
    P: Policy<D>,
    Q: Policy<D>,
{
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        self.left.allows(knowledge) && self.right.allows(knowledge)
    }

    fn name(&self) -> String {
        format!("{} ∧ {}", self.left.name(), self.right.name())
    }
}

/// A declarative, wire-speakable policy description: the closed subset of [`Policy`] the serving
/// protocol can carry in an `OpenSession` request.
///
/// A spec *is* a policy (it implements [`Policy`] for every domain), and it round-trips through
/// a compact text form — [`PolicySpec::parse`] is the exact inverse of `Display` **on every
/// value `parse` can produce**. `parse` never builds an empty or single-element
/// [`All`](PolicySpec::All); constructing those directly forfeits the round-trip (a singleton
/// re-parses as its bare atom, an empty conjunction displays as an unparseable empty string —
/// and, as a policy, vacuously allows everything), so wire-facing code should build specs via
/// `parse`:
///
/// * `allow-all` — [`AllowAll`];
/// * `min-size:100` — [`MinSizePolicy`], the paper's `qpolicy`;
/// * `min-entropy-mb:2500` — [`MinEntropyPolicy`] with the threshold in *millibits*, so specs
///   stay `Eq`/hashable and survive the wire without floating-point formatting drift;
/// * `min-size:100&min-entropy-mb:2500` — conjunction of atoms ([`AndPolicy`]).
///
/// Arbitrary [`FnPolicy`] predicates are deliberately not expressible: a remote connection must
/// not ship code, only parameters of the monotone policies the deployment already trusts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PolicySpec {
    /// Accept everything (baseline / measurement sessions).
    AllowAll,
    /// Knowledge must keep strictly more than this many candidate secrets.
    MinSize(u128),
    /// Residual Shannon entropy must stay strictly above this many millibits.
    MinEntropyMillibits(u64),
    /// Every listed spec must accept (flattened conjunction; [`PolicySpec::parse`] only
    /// produces lists of two or more atoms).
    All(Vec<PolicySpec>),
}

impl PolicySpec {
    /// Parses the text form described on [`PolicySpec`]. Returns `None` on any malformed input
    /// (unknown atom, bad number, empty conjunct).
    pub fn parse(text: &str) -> Option<PolicySpec> {
        let atoms: Vec<PolicySpec> =
            text.split('&').map(Self::parse_atom).collect::<Option<_>>()?;
        match atoms.len() {
            0 => None,
            1 => atoms.into_iter().next(),
            _ => Some(PolicySpec::All(atoms)),
        }
    }

    /// The effective minimum-size threshold this spec enforces: the largest `min-size` atom in
    /// the spec (conjunctions enforce all their atoms, so the largest one dominates), or `None`
    /// when no atom bounds the size directly. Entropy atoms are not folded in — they bound a
    /// different quantity.
    ///
    /// Every knowledge a [`Policy::allows`] check passes therefore satisfies
    /// `size > min_size_bound()`, which is the floor invariant the adversarial probe tests
    /// assert: however a client walks a secret's range, released knowledge never crosses the
    /// threshold.
    pub fn min_size_bound(&self) -> Option<u128> {
        match self {
            PolicySpec::AllowAll | PolicySpec::MinEntropyMillibits(_) => None,
            PolicySpec::MinSize(n) => Some(*n),
            PolicySpec::All(specs) => specs.iter().filter_map(|s| s.min_size_bound()).max(),
        }
    }

    fn parse_atom(text: &str) -> Option<PolicySpec> {
        let text = text.trim();
        if text == "allow-all" {
            return Some(PolicySpec::AllowAll);
        }
        if let Some(n) = text.strip_prefix("min-size:") {
            return n.parse().ok().map(PolicySpec::MinSize);
        }
        if let Some(n) = text.strip_prefix("min-entropy-mb:") {
            return n.parse().ok().map(PolicySpec::MinEntropyMillibits);
        }
        None
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::AllowAll => write!(f, "allow-all"),
            PolicySpec::MinSize(n) => write!(f, "min-size:{n}"),
            PolicySpec::MinEntropyMillibits(mb) => write!(f, "min-entropy-mb:{mb}"),
            PolicySpec::All(specs) => {
                for (i, spec) in specs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "&")?;
                    }
                    write!(f, "{spec}")?;
                }
                Ok(())
            }
        }
    }
}

impl<D: AbstractDomain> Policy<D> for PolicySpec {
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        match self {
            PolicySpec::AllowAll => true,
            PolicySpec::MinSize(n) => knowledge.size() > *n,
            PolicySpec::MinEntropyMillibits(mb) => {
                knowledge.shannon_entropy() > *mb as f64 / 1000.0
            }
            PolicySpec::All(specs) => specs.iter().all(|s| Policy::<D>::allows(s, knowledge)),
        }
    }

    fn name(&self) -> String {
        self.to_string()
    }
}

/// A policy given by an arbitrary predicate on knowledge.
///
/// **Soundness obligation**: for enforcement through under-approximations the predicate must be
/// monotone — if it accepts some knowledge it must accept every larger knowledge. The library
/// cannot check this for you (the paper leaves a policy DSL with this guarantee as future work).
#[derive(Clone)]
pub struct FnPolicy<D> {
    name: String,
    #[allow(clippy::type_complexity)]
    predicate: Arc<dyn Fn(&Knowledge<D>) -> bool + Send + Sync>,
}

impl<D: AbstractDomain> FnPolicy<D> {
    /// Wraps a predicate with a display name.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&Knowledge<D>) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnPolicy { name: name.into(), predicate: Arc::new(predicate) }
    }
}

impl<D> fmt::Debug for FnPolicy<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnPolicy({})", self.name)
    }
}

impl<D: AbstractDomain> Policy<D> for FnPolicy<D> {
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        (self.predicate)(knowledge)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain};
    use anosy_logic::SecretLayout;

    fn knowledge_of_size(n: i64) -> Knowledge<IntervalDomain> {
        Knowledge::from_domain(IntervalDomain::from_intervals(vec![AInt::new(1, n)]))
    }

    #[test]
    fn min_size_policy_matches_the_paper() {
        let policy = MinSizePolicy::new(100);
        assert_eq!(policy.min_size(), 100);
        assert!(Policy::<IntervalDomain>::name(&policy).contains("100"));
        assert!(policy.allows(&knowledge_of_size(6837)));
        assert!(policy.allows(&knowledge_of_size(101)));
        assert!(!policy.allows(&knowledge_of_size(100)));
        assert!(!policy.allows(&knowledge_of_size(1)));
    }

    #[test]
    fn entropy_policy_thresholds_in_bits() {
        let policy = MinEntropyPolicy::new(7.0); // > 128 candidates
        assert!(policy.allows(&knowledge_of_size(129)));
        assert!(!policy.allows(&knowledge_of_size(128)));
        assert!(Policy::<IntervalDomain>::name(&policy).contains("bits"));
    }

    #[test]
    fn allow_all_and_conjunction() {
        let layout = SecretLayout::builder().field("x", 0, 10).build();
        let k: Knowledge<IntervalDomain> = Knowledge::initial(&layout);
        assert!(AllowAll.allows(&k));
        let both = AndPolicy::new(MinSizePolicy::new(5), MinEntropyPolicy::new(1.0));
        assert!(both.allows(&knowledge_of_size(11)));
        assert!(!both.allows(&knowledge_of_size(4)));
        assert!(Policy::<IntervalDomain>::name(&both).contains('∧'));
    }

    #[test]
    fn fn_policy_wraps_custom_predicates() {
        let policy: FnPolicy<IntervalDomain> = FnPolicy::new("even-sized", |k| k.size() % 2 == 0);
        assert!(policy.allows(&knowledge_of_size(4)));
        assert!(!policy.allows(&knowledge_of_size(3)));
        assert_eq!(Policy::<IntervalDomain>::name(&policy), "even-sized");
        assert!(format!("{policy:?}").contains("even-sized"));
    }

    #[test]
    fn policy_specs_round_trip_and_enforce_like_their_policies() {
        // parse ∘ Display is the identity on everything parse can produce.
        let cases = [
            PolicySpec::AllowAll,
            PolicySpec::MinSize(100),
            PolicySpec::MinEntropyMillibits(7000),
            PolicySpec::All(vec![PolicySpec::MinSize(5), PolicySpec::MinEntropyMillibits(1000)]),
        ];
        for spec in &cases {
            assert_eq!(PolicySpec::parse(&spec.to_string()).as_ref(), Some(spec), "{spec}");
        }
        assert_eq!(
            PolicySpec::parse("min-size:100&min-entropy-mb:2500").unwrap().to_string(),
            "min-size:100&min-entropy-mb:2500"
        );
        for bad in ["", "min-size:", "min-size:x", "max-size:3", "min-size:1&", "&"] {
            assert_eq!(PolicySpec::parse(bad), None, "{bad:?} must not parse");
        }

        // Enforcement agrees with the concrete policies the atoms describe.
        let spec = PolicySpec::parse("min-size:100").unwrap();
        let concrete = MinSizePolicy::new(100);
        for n in [1, 100, 101, 6837] {
            assert_eq!(
                Policy::<IntervalDomain>::allows(&spec, &knowledge_of_size(n)),
                concrete.allows(&knowledge_of_size(n))
            );
        }
        let both = PolicySpec::parse("min-size:5&min-entropy-mb:1000").unwrap();
        assert!(Policy::<IntervalDomain>::allows(&both, &knowledge_of_size(11)));
        assert!(!Policy::<IntervalDomain>::allows(&both, &knowledge_of_size(4)));
        assert!(Policy::<IntervalDomain>::allows(&PolicySpec::AllowAll, &knowledge_of_size(1)));
        // The millibit threshold is exclusive, like MinEntropyPolicy's bits.
        let entropy = PolicySpec::MinEntropyMillibits(7000);
        assert!(Policy::<IntervalDomain>::allows(&entropy, &knowledge_of_size(129)));
        assert!(!Policy::<IntervalDomain>::allows(&entropy, &knowledge_of_size(128)));
        assert_eq!(Policy::<IntervalDomain>::name(&both), "min-size:5&min-entropy-mb:1000");
    }

    #[test]
    fn min_size_bound_reports_the_dominant_size_atom() {
        assert_eq!(PolicySpec::AllowAll.min_size_bound(), None);
        assert_eq!(PolicySpec::MinEntropyMillibits(7000).min_size_bound(), None);
        assert_eq!(PolicySpec::MinSize(2000).min_size_bound(), Some(2000));
        let conjunction = PolicySpec::parse("min-size:100&min-entropy-mb:2500&min-size:30000");
        assert_eq!(conjunction.unwrap().min_size_bound(), Some(30_000));
        // An entropy-only conjunction bounds no size.
        let entropy_only = PolicySpec::parse("allow-all&min-entropy-mb:1000").unwrap();
        assert_eq!(entropy_only.min_size_bound(), None);

        // The invariant the probe tests lean on: whatever the spec allows is larger than the
        // bound it reports.
        let spec = PolicySpec::parse("min-size:100&min-entropy-mb:1000").unwrap();
        let bound = spec.min_size_bound().unwrap();
        for n in [99, 100, 101, 500] {
            if Policy::<IntervalDomain>::allows(&spec, &knowledge_of_size(n)) {
                assert!(n as u128 > bound);
            }
        }
    }

    #[test]
    fn policies_are_usable_as_trait_objects() {
        let boxed: Vec<Box<dyn Policy<IntervalDomain>>> = vec![
            Box::new(MinSizePolicy::new(10)),
            Box::new(AllowAll),
            Box::new(FnPolicy::new("big", |k| k.size() > 1000)),
        ];
        let k = knowledge_of_size(50);
        let verdicts: Vec<bool> = boxed.iter().map(|p| p.allows(&k)).collect();
        assert_eq!(verdicts, vec![true, true, false]);
    }
}
