//! Quantitative declassification policies.
//!
//! A policy is a predicate on (approximated) attacker knowledge (§2.1: `qpolicy dom = size dom >
//! 100`). For enforcement through *under*-approximations to be sound, the policy must be
//! monotone: if it accepts a knowledge set it must accept every superset (§3, "the policy should
//! be an increasing function in the size of the input"). All policies provided here are monotone
//! by construction; [`FnPolicy`] documents the obligation for custom predicates.

use crate::Knowledge;
use anosy_domains::AbstractDomain;
use std::fmt;
use std::sync::Arc;

/// A quantitative declassification policy over knowledge represented in domain `D`.
pub trait Policy<D: AbstractDomain>: fmt::Debug {
    /// Returns `true` when the given knowledge is still acceptable (no violation).
    fn allows(&self, knowledge: &Knowledge<D>) -> bool;

    /// A short human-readable name used in error messages and reports.
    fn name(&self) -> String;
}

/// Accepts everything. Useful as a baseline and for measuring "how fast would knowledge shrink
/// without enforcement".
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl<D: AbstractDomain> Policy<D> for AllowAll {
    fn allows(&self, _knowledge: &Knowledge<D>) -> bool {
        true
    }

    fn name(&self) -> String {
        "allow-all".into()
    }
}

/// The paper's `qpolicy`: the knowledge must keep strictly more than `min_size` candidate
/// secrets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinSizePolicy {
    min_size: u128,
}

impl MinSizePolicy {
    /// Requires `size knowledge > min_size`.
    pub fn new(min_size: u128) -> Self {
        MinSizePolicy { min_size }
    }

    /// The threshold.
    pub fn min_size(&self) -> u128 {
        self.min_size
    }
}

impl<D: AbstractDomain> Policy<D> for MinSizePolicy {
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        knowledge.size() > self.min_size
    }

    fn name(&self) -> String {
        format!("min-size({})", self.min_size)
    }
}

/// Requires the residual Shannon entropy (in bits, under the uniform reading) to stay strictly
/// above a threshold — one of the §8 "further applications".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinEntropyPolicy {
    min_bits: f64,
}

impl MinEntropyPolicy {
    /// Requires `shannon_entropy(knowledge) > min_bits`.
    pub fn new(min_bits: f64) -> Self {
        MinEntropyPolicy { min_bits }
    }
}

impl<D: AbstractDomain> Policy<D> for MinEntropyPolicy {
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        knowledge.shannon_entropy() > self.min_bits
    }

    fn name(&self) -> String {
        format!("min-entropy({} bits)", self.min_bits)
    }
}

/// Conjunction of two policies: both must accept.
#[derive(Debug)]
pub struct AndPolicy<P, Q> {
    left: P,
    right: Q,
}

impl<P, Q> AndPolicy<P, Q> {
    /// Requires both `left` and `right` to accept.
    pub fn new(left: P, right: Q) -> Self {
        AndPolicy { left, right }
    }
}

impl<D, P, Q> Policy<D> for AndPolicy<P, Q>
where
    D: AbstractDomain,
    P: Policy<D>,
    Q: Policy<D>,
{
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        self.left.allows(knowledge) && self.right.allows(knowledge)
    }

    fn name(&self) -> String {
        format!("{} ∧ {}", self.left.name(), self.right.name())
    }
}

/// A policy given by an arbitrary predicate on knowledge.
///
/// **Soundness obligation**: for enforcement through under-approximations the predicate must be
/// monotone — if it accepts some knowledge it must accept every larger knowledge. The library
/// cannot check this for you (the paper leaves a policy DSL with this guarantee as future work).
#[derive(Clone)]
pub struct FnPolicy<D> {
    name: String,
    #[allow(clippy::type_complexity)]
    predicate: Arc<dyn Fn(&Knowledge<D>) -> bool + Send + Sync>,
}

impl<D: AbstractDomain> FnPolicy<D> {
    /// Wraps a predicate with a display name.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&Knowledge<D>) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnPolicy { name: name.into(), predicate: Arc::new(predicate) }
    }
}

impl<D> fmt::Debug for FnPolicy<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnPolicy({})", self.name)
    }
}

impl<D: AbstractDomain> Policy<D> for FnPolicy<D> {
    fn allows(&self, knowledge: &Knowledge<D>) -> bool {
        (self.predicate)(knowledge)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain};
    use anosy_logic::SecretLayout;

    fn knowledge_of_size(n: i64) -> Knowledge<IntervalDomain> {
        Knowledge::from_domain(IntervalDomain::from_intervals(vec![AInt::new(1, n)]))
    }

    #[test]
    fn min_size_policy_matches_the_paper() {
        let policy = MinSizePolicy::new(100);
        assert_eq!(policy.min_size(), 100);
        assert!(Policy::<IntervalDomain>::name(&policy).contains("100"));
        assert!(policy.allows(&knowledge_of_size(6837)));
        assert!(policy.allows(&knowledge_of_size(101)));
        assert!(!policy.allows(&knowledge_of_size(100)));
        assert!(!policy.allows(&knowledge_of_size(1)));
    }

    #[test]
    fn entropy_policy_thresholds_in_bits() {
        let policy = MinEntropyPolicy::new(7.0); // > 128 candidates
        assert!(policy.allows(&knowledge_of_size(129)));
        assert!(!policy.allows(&knowledge_of_size(128)));
        assert!(Policy::<IntervalDomain>::name(&policy).contains("bits"));
    }

    #[test]
    fn allow_all_and_conjunction() {
        let layout = SecretLayout::builder().field("x", 0, 10).build();
        let k: Knowledge<IntervalDomain> = Knowledge::initial(&layout);
        assert!(AllowAll.allows(&k));
        let both = AndPolicy::new(MinSizePolicy::new(5), MinEntropyPolicy::new(1.0));
        assert!(both.allows(&knowledge_of_size(11)));
        assert!(!both.allows(&knowledge_of_size(4)));
        assert!(Policy::<IntervalDomain>::name(&both).contains('∧'));
    }

    #[test]
    fn fn_policy_wraps_custom_predicates() {
        let policy: FnPolicy<IntervalDomain> = FnPolicy::new("even-sized", |k| k.size() % 2 == 0);
        assert!(policy.allows(&knowledge_of_size(4)));
        assert!(!policy.allows(&knowledge_of_size(3)));
        assert_eq!(Policy::<IntervalDomain>::name(&policy), "even-sized");
        assert!(format!("{policy:?}").contains("even-sized"));
    }

    #[test]
    fn policies_are_usable_as_trait_objects() {
        let boxed: Vec<Box<dyn Policy<IntervalDomain>>> = vec![
            Box::new(MinSizePolicy::new(10)),
            Box::new(AllowAll),
            Box::new(FnPolicy::new("big", |k| k.size() > 1000)),
        ];
        let k = knowledge_of_size(50);
        let verdicts: Vec<bool> = boxed.iter().map(|p| p.allows(&k)).collect();
        assert_eq!(verdicts, vec![true, true, false]);
    }
}
