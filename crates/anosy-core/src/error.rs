//! Errors of the bounded downgrade.

use anosy_ifc::IfcError;
use anosy_solver::SolverError;
use anosy_synth::SynthError;
use std::fmt;

/// Errors raised by [`crate::AnosySession`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AnosyError {
    /// `downgrade` was asked to run a query that was never registered (the paper's
    /// "Can't downgrade" error): approximations are synthesized ahead of time, so an unknown
    /// query has no posterior function.
    UnknownQuery {
        /// The requested query name.
        name: String,
    },
    /// Performing the query would violate the quantitative policy on at least one of the two
    /// possible posteriors, so the query was **not** executed.
    PolicyViolation {
        /// The query that was refused.
        query: String,
        /// The name of the policy that refused it.
        policy: String,
        /// Size of the posterior for the `true` answer.
        posterior_true_size: u128,
        /// Size of the posterior for the `false` answer.
        posterior_false_size: u128,
    },
    /// The secret lies outside the declared secret space, so no sound knowledge tracking is
    /// possible for it.
    SecretOutsideLayout,
    /// A registration-time failure: synthesis could not produce an approximation.
    Synthesis(SynthError),
    /// A registration-time failure: the synthesized approximation did not verify. This indicates
    /// a bug in the synthesizer (the paper's analogue is a Liquid Haskell rejection) and is
    /// surfaced rather than silently accepted.
    VerificationFailed {
        /// The query whose approximation failed to verify.
        query: String,
        /// Rendered verification report.
        report: String,
    },
    /// A cache-only registration ([`crate::AnosySession::register_cached`]) found no synthesized
    /// entry for the query: the deployment must synthesize (or warm-start) it first.
    NotSynthesized {
        /// The query whose synthesis is missing.
        name: String,
    },
    /// The underlying solver failed while verifying a registration.
    Solver(SolverError),
    /// The underlying IFC substrate rejected an operation.
    Ifc(IfcError),
}

impl fmt::Display for AnosyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnosyError::UnknownQuery { name } => write!(f, "can't downgrade {name}: unknown query"),
            AnosyError::PolicyViolation {
                query,
                policy,
                posterior_true_size,
                posterior_false_size,
            } => write!(
                f,
                "policy violation: {policy} refuses {query} (posterior sizes: true {posterior_true_size}, false {posterior_false_size})"
            ),
            AnosyError::SecretOutsideLayout => {
                write!(f, "the secret lies outside the declared secret space")
            }
            AnosyError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            AnosyError::VerificationFailed { query, report } => {
                write!(f, "synthesized approximation for {query} failed verification:\n{report}")
            }
            AnosyError::NotSynthesized { name } => {
                write!(f, "can't register {name}: no cached synthesis for the query")
            }
            AnosyError::Solver(e) => write!(f, "solver failure: {e}"),
            AnosyError::Ifc(e) => write!(f, "IFC violation: {e}"),
        }
    }
}

impl std::error::Error for AnosyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnosyError::Synthesis(e) => Some(e),
            AnosyError::Solver(e) => Some(e),
            AnosyError::Ifc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SynthError> for AnosyError {
    fn from(e: SynthError) -> Self {
        AnosyError::Synthesis(e)
    }
}

impl From<SolverError> for AnosyError {
    fn from(e: SolverError) -> Self {
        AnosyError::Solver(e)
    }
}

impl From<IfcError> for AnosyError {
    fn from(e: IfcError) -> Self {
        AnosyError::Ifc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_matches_the_papers_messages() {
        let unknown = AnosyError::UnknownQuery { name: "nearby".into() };
        assert!(unknown.to_string().contains("can't downgrade nearby"));
        let violation = AnosyError::PolicyViolation {
            query: "nearby (400,200)".into(),
            policy: "min-size(100)".into(),
            posterior_true_size: 0,
            posterior_false_size: 2537,
        };
        assert!(violation.to_string().contains("policy violation"));
        assert!(violation.to_string().contains("true 0"));
    }

    #[test]
    fn conversions_set_sources() {
        let e: AnosyError = SolverError::EmptySpace.into();
        assert!(e.source().is_some());
        let e: AnosyError = IfcError::FlowViolation { from: "a".into(), to: "b".into() }.into();
        assert!(e.source().is_some());
        assert!(AnosyError::SecretOutsideLayout.source().is_none());
    }
}
