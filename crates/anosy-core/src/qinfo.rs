//! Registered query information (the paper's `QInfo` record, Fig. 2).

use anosy_domains::AbstractDomain;
use anosy_logic::Point;
use anosy_synth::{ApproxKind, IndSets, QueryDef};
use std::fmt;

/// A query together with its synthesized knowledge approximation.
///
/// This is the value stored in the session's query map: the query itself (to execute it on the
/// secret once authorized) and the approximation function (to compute posteriors without looking
/// at the secret). In the paper the approximation is a Haskell function `approx`; here it is the
/// pair of ind. sets, and the posterior is computed by intersecting them with the prior
/// ([`IndSets::posterior`]), which is exactly how the synthesized `approx` is defined (Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct QInfo<D> {
    query: QueryDef,
    indsets: IndSets<D>,
}

impl<D: AbstractDomain> QInfo<D> {
    /// Packages a query with its (already verified) ind. sets.
    pub fn new(query: QueryDef, indsets: IndSets<D>) -> Self {
        QInfo { query, indsets }
    }

    /// The query definition.
    pub fn query(&self) -> &QueryDef {
        &self.query
    }

    /// The synthesized ind. sets.
    pub fn indsets(&self) -> &IndSets<D> {
        &self.indsets
    }

    /// The approximation direction of the stored ind. sets.
    pub fn kind(&self) -> ApproxKind {
        self.indsets.kind()
    }

    /// Executes the query on a concrete secret (only called after the policy check authorizes
    /// it).
    pub fn ask(&self, secret: &Point) -> bool {
        self.query.ask(secret)
    }

    /// The posterior knowledge for both possible answers, given the prior.
    pub fn posterior(&self, prior: &D) -> (D, D) {
        self.indsets.posterior(prior)
    }
}

impl<D: AbstractDomain + fmt::Display> fmt::Display for QInfo<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} with {} approximation", self.query, self.indsets.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain};
    use anosy_logic::{IntExpr, SecretLayout};

    fn qinfo() -> QInfo<IntervalDomain> {
        let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        let query = QueryDef::new("nearby_200_200", layout, nearby).unwrap();
        let indsets = IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
        );
        QInfo::new(query, indsets)
    }

    #[test]
    fn accessors_and_execution() {
        let info = qinfo();
        assert_eq!(info.query().name(), "nearby_200_200");
        assert_eq!(info.kind(), ApproxKind::Under);
        assert!(info.ask(&Point::new(vec![300, 200])));
        assert!(!info.ask(&Point::new(vec![0, 0])));
    }

    #[test]
    fn posterior_matches_the_papers_walkthrough() {
        let info = qinfo();
        let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
        let top = IntervalDomain::top(&layout);
        let (post_t, post_f) = info.posterior(&top);
        assert_eq!(post_t.size(), 6837); // |post1| in §3
        assert_eq!(post_f.size(), 401 * 100);
    }

    #[test]
    fn display_mentions_query_and_kind() {
        let text = qinfo().to_string();
        assert!(text.contains("nearby_200_200"));
        assert!(text.contains("under"));
    }
}
