//! Deterministic telemetry for the serving stack: clocks, span rings, counters and
//! log-bucketed latency histograms.
//!
//! The serving crates are instrumented unconditionally — spans around wire decode, ticks,
//! batched downgrades, single-flight synthesis and solver entry points; counters and histograms
//! next to the hot-path bookkeeping — but **recording only exists when the `enabled` cargo
//! feature is on** (anosy-serve's default `telemetry` feature turns it on). Without the feature
//! every function in this crate is an inlined no-op, so builds that opt out carry zero cost at
//! the instrumented sites.
//!
//! # Model
//!
//! Recording is per-thread: a reactor installs a [`Collector`] with [`install`] before its
//! event loop and takes the finished [`Report`] back with [`uninstall`] after. Threads without
//! a collector (shard-pool workers, tests that never install one) skip every record cheaply —
//! one thread-local probe. This is deliberate: the reactor thread's execution order is a
//! deterministic function of its transport's event sequence, so everything a collector captures
//! replays exactly; worker-thread interleavings are not deterministic, so nothing is captured
//! there.
//!
//! # Determinism
//!
//! A [`Collector`] timestamps with the [`Clock`] it was built with. Real servers use
//! [`MonotonicClock`] (microseconds since reactor start); simulated and scripted transports use
//! [`VirtualClock`], a shared counter the transport sets to its own virtual time. Under a
//! virtual clock a trace is a pure function of the transport's event schedule — replaying the
//! same seed reproduces the trace **byte-identically**, which is what makes traces diffable
//! evidence rather than one-off samples.
//!
//! Aggregation is deterministic too: registries key on `BTreeMap`, per-shard reports merge in
//! shard order ([`merge_metrics`]), and histogram buckets are value-derived (log₂), never
//! timing-derived.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

/// A source of integer timestamps. Units are the clock's own: microseconds for
/// [`MonotonicClock`], whatever the driving transport counts in for [`VirtualClock`].
pub trait Clock {
    /// The current time in this clock's units. Must be monotonic (never decrease).
    fn now(&self) -> u64;
}

/// Real wall-progress time: microseconds elapsed since the clock was created.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is now.
    pub fn new() -> MonotonicClock {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Deterministic time driven from outside: a shared counter the owning transport sets (or
/// advances) as its own notion of virtual time progresses. Clones share the counter, so the
/// transport keeps one handle and the [`Collector`] reads another.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Sets the current virtual time (transports call this as their schedule advances).
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::Relaxed);
    }

    /// Advances the current virtual time by `by` units.
    pub fn advance(&self, by: u64) {
        self.now.fetch_add(by, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// A clock a transport hands to the reactor: either flavor behind one cloneable value (no
/// boxing, no generics at the call sites).
#[derive(Debug, Clone)]
pub enum ClockHandle {
    /// Real time ([`MonotonicClock`] microseconds).
    Monotonic(MonotonicClock),
    /// Transport-driven virtual time.
    Virtual(VirtualClock),
}

impl ClockHandle {
    /// A fresh real-time clock (zero = now).
    pub fn monotonic() -> ClockHandle {
        ClockHandle::Monotonic(MonotonicClock::new())
    }
}

impl Clock for ClockHandle {
    fn now(&self) -> u64 {
        match self {
            ClockHandle::Monotonic(clock) => clock.now(),
            ClockHandle::Virtual(clock) => clock.now(),
        }
    }
}

// ---------------------------------------------------------------------------
// Histograms and the metrics registry
// ---------------------------------------------------------------------------

/// Bucket count of [`Histogram`]: bucket 0 holds the value 0, bucket `i ≥ 1` holds the values
/// with `i` significant bits (`2^(i-1) ..= 2^i - 1`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations with an exact maximum. Bucketing by bit
/// length keeps recording O(1) and allocation-free while preserving tail shape; percentiles
/// report a bucket's upper bound (clamped to the exact max), so they overestimate by at most
/// 2× — the right bias for latency budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

/// The bucket index a value lands in: its bit length.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` can hold.
fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << index) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` (in `0.0 ..= 1.0`) as the upper bound of the bucket holding the
    /// rank-`⌈q·count⌉` observation, clamped to the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Adds every bucket of `other` into this histogram (max takes the max). Merging is
    /// commutative and associative — shard order only matters for presentation, never values.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Renders `{"count":…,"sum":…,"max":…,"p50":…,"p90":…,"p99":…}` (one line).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count,
            self.sum,
            self.max,
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

/// Counters and histograms keyed by static name. `BTreeMap` keys make every iteration (and
/// therefore every JSON rendering) deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &n)| (name, n))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&name, h)| (name, h))
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into this registry (counters add, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &n) in &other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (&name, histogram) in &other.histograms {
            self.histograms.entry(name).or_default().merge(histogram);
        }
    }

    /// Renders the whole registry as one line of JSON:
    /// `{"counters":{…},"histograms":{…}}`, keys in name order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (index, (name, n)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(out, ":{n}");
        }
        out.push_str("},\"histograms\":{");
        for (index, (name, histogram)) in self.histograms.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&histogram.to_json());
        }
        out.push_str("}}");
        out
    }
}

/// Appends `text` as a JSON string literal (names are static identifiers, but quoting is
/// escaped anyway so the output is always well-formed JSON).
fn push_json_str(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// The hot-path sink
// ---------------------------------------------------------------------------

/// Flat metric storage for the record path: values live in slots, and a `&'static str` name
/// resolves to its slot by **pointer identity** after first touch — a short linear scan over
/// word-sized keys instead of a string-keyed map lookup per event. Distinct literal addresses
/// of the same name (one per instantiation site, potentially) each resolve once by string
/// equality and then share a slot, so aggregation is still by name. Converted to a
/// [`MetricsRegistry`] (deterministic `BTreeMap` order) at report time.
#[derive(Debug, Default)]
struct SlotTable<T> {
    /// `(name.as_ptr(), name.len()) → slot` — the pointer-identity cache.
    cache: Vec<(usize, usize, u32)>,
    names: Vec<&'static str>,
    values: Vec<T>,
}

impl<T: Default> SlotTable<T> {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn slot(&mut self, name: &'static str) -> &mut T {
        let key = (name.as_ptr() as usize, name.len());
        if let Some(&(_, _, slot)) = self.cache.iter().find(|&&(ptr, len, _)| (ptr, len) == key) {
            return &mut self.values[slot as usize];
        }
        let slot = self.names.iter().position(|&known| known == name).unwrap_or_else(|| {
            self.names.push(name);
            self.values.push(T::default());
            self.names.len() - 1
        });
        self.cache.push((key.0, key.1, slot as u32));
        &mut self.values[slot]
    }
}

/// The [`Collector`]'s counters and histograms, in [`SlotTable`] form.
#[derive(Debug, Default)]
struct MetricsSink {
    counters: SlotTable<u64>,
    histograms: SlotTable<Histogram>,
}

impl MetricsSink {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.slot(name) += n;
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.slot(name).record(value);
    }

    fn to_registry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        for (&name, &n) in self.counters.names.iter().zip(&self.counters.values) {
            registry.add(name, n);
        }
        for (&name, histogram) in self.histograms.names.iter().zip(&self.histograms.values) {
            registry.histograms.entry(name).or_default().merge(histogram);
        }
        registry
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed span, as kept in the collector's ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The instrumentation-site name (e.g. `frontend.tick`).
    pub name: &'static str,
    /// Start timestamp, in the collector clock's units.
    pub start: u64,
    /// End timestamp (when the guard dropped).
    pub end: u64,
    /// The [`SpanRecord::seq`] of the enclosing span still open when this one ended.
    pub parent: Option<u64>,
    /// Start-order sequence number within the collector — stable across ring eviction, so
    /// parent links stay meaningful even when the parent itself aged out.
    pub seq: u64,
}

/// Default ring capacity of a [`Collector`]: the most recent spans kept per reactor. Eviction
/// is deterministic (strict start order), so a capped trace is still replayable evidence.
pub const DEFAULT_RING_CAP: usize = 4096;

// ---------------------------------------------------------------------------
// Collector and the thread-local recording surface
// ---------------------------------------------------------------------------

/// Per-thread recording state: the clock, the span ring, the open-span stack and the metrics
/// registry. Built by the reactor, installed with [`install`], harvested with [`uninstall`].
#[derive(Debug)]
pub struct Collector {
    clock: ClockHandle,
    shard: u64,
    ring_cap: usize,
    spans: VecDeque<SpanRecord>,
    stack: Vec<u64>,
    next_seq: u64,
    dropped: u64,
    metrics: MetricsSink,
}

impl Collector {
    /// A collector for reactor shard `shard` timestamping with `clock`, with the
    /// [`DEFAULT_RING_CAP`] span ring.
    pub fn new(clock: ClockHandle, shard: u64) -> Collector {
        Collector {
            clock,
            shard,
            ring_cap: DEFAULT_RING_CAP,
            spans: VecDeque::new(),
            stack: Vec::new(),
            next_seq: 0,
            dropped: 0,
            metrics: MetricsSink::default(),
        }
    }

    /// Overrides the span-ring capacity (clamped to at least one).
    pub fn with_ring_cap(mut self, cap: usize) -> Collector {
        self.ring_cap = cap.max(1);
        self
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn begin_span(&mut self) -> (u64, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stack.push(seq);
        (seq, self.clock.now())
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn end_span(&mut self, name: &'static str, seq: u64, start: u64) {
        // Guards drop in LIFO order on every sane path; tolerate the insane ones by removing
        // the seq wherever it sits so the stack never wedges.
        match self.stack.last() {
            Some(&top) if top == seq => {
                self.stack.pop();
            }
            _ => self.stack.retain(|&open| open != seq),
        }
        let parent = self.stack.last().copied();
        let end = self.clock.now();
        if self.spans.len() >= self.ring_cap {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(SpanRecord { name, start, end, parent, seq });
    }

    /// The collector clock's current time (the clock units of every span and latency here).
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        self.metrics.add(name, n);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.metrics.observe(name, value);
    }

    /// The report of everything recorded so far (the ring in start order, the registry as-is).
    pub fn report(&self) -> Report {
        Report {
            shard: self.shard,
            spans: self.spans.iter().cloned().collect(),
            dropped_spans: self.dropped,
            metrics: self.metrics.to_registry(),
        }
    }
}

/// Everything one collector captured: the per-shard half of a deployment-wide trace or
/// metrics view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The reactor shard the collector recorded (0 for a standalone server).
    pub shard: u64,
    /// Completed spans in start order — the most recent [`DEFAULT_RING_CAP`] (or the
    /// configured cap); older spans aged out deterministically.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring.
    pub dropped_spans: u64,
    /// The counters and histograms.
    pub metrics: MetricsRegistry,
}

#[cfg(feature = "enabled")]
thread_local! {
    static COLLECTOR: std::cell::RefCell<Option<Collector>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `collector` as this thread's recording sink, replacing any previous one. Reactors
/// call this at the top of their event loop.
pub fn install(collector: Collector) {
    #[cfg(feature = "enabled")]
    COLLECTOR.with(|slot| *slot.borrow_mut() = Some(collector));
    #[cfg(not(feature = "enabled"))]
    let _ = collector;
}

/// Removes this thread's collector and returns its finished [`Report`]. `None` when nothing
/// was installed (or recording is compiled out).
pub fn uninstall() -> Option<Report> {
    #[cfg(feature = "enabled")]
    {
        COLLECTOR.with(|slot| slot.borrow_mut().take()).map(|collector| collector.report())
    }
    #[cfg(not(feature = "enabled"))]
    None
}

/// A point-in-time copy of this thread's recording state, leaving the collector installed —
/// how a live `metrics`/`trace` wire request answers mid-serve.
pub fn snapshot() -> Option<Report> {
    #[cfg(feature = "enabled")]
    {
        COLLECTOR.with(|slot| slot.borrow().as_ref().map(Collector::report))
    }
    #[cfg(not(feature = "enabled"))]
    None
}

/// Whether this thread currently records (a collector is installed and recording is compiled
/// in). Call sites use this to skip clock reads feeding [`observe`] when nothing listens.
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        COLLECTOR.with(|slot| slot.borrow().is_some())
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// Starts a span; the returned guard records `(name, start, end, parent)` into the thread's
/// collector when dropped. Without a collector (or with recording compiled out) the guard is
/// inert and free.
#[must_use = "a span is recorded when its guard drops; binding it to `_` drops immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        let begun = COLLECTOR.with(|slot| slot.borrow_mut().as_mut().map(Collector::begin_span));
        SpanGuard { live: begun.map(|(seq, start)| (name, seq, start)) }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard { _inert: () }
    }
}

/// The drop guard of [`span()`](fn@span).
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    live: Option<(&'static str, u64, u64)>,
    #[cfg(not(feature = "enabled"))]
    _inert: (),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((name, seq, start)) = self.live.take() {
            COLLECTOR.with(|slot| {
                if let Some(collector) = slot.borrow_mut().as_mut() {
                    collector.end_span(name, seq, start);
                }
            });
        }
    }
}

/// Opens a span for the rest of the enclosing scope: `span!("frontend.tick");` is
/// `let _guard = anosy_telemetry::span("frontend.tick");` without naming the guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _anosy_telemetry_span = $crate::span($name);
    };
}

/// Runs `f` against this thread's installed collector; `None` (without running `f`) when no
/// collector is installed or recording is compiled out. The batch form of [`count`] and
/// [`observe`]: a call site recording several metrics around one event pays the thread-local
/// round-trip once instead of per metric.
pub fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    #[cfg(feature = "enabled")]
    {
        COLLECTOR.with(|slot| slot.borrow_mut().as_mut().map(f))
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = f;
        None
    }
}

/// Adds `n` to the thread collector's named counter (no-op without a collector).
pub fn count(name: &'static str, n: u64) {
    with_collector(|collector| collector.count(name, n));
}

/// Records `value` into the thread collector's named histogram (no-op without a collector).
pub fn observe(name: &'static str, value: u64) {
    with_collector(|collector| collector.observe(name, value));
}

/// Runs `f`, recording its duration (collector clock units) into the named histogram. Without
/// a collector `f` runs untimed — no clock is read at all.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let start = with_collector(|collector| collector.now());
    let result = f();
    if let Some(start) = start {
        with_collector(|collector| {
            let elapsed = collector.now().saturating_sub(start);
            collector.observe(name, elapsed);
        });
    }
    result
}

// ---------------------------------------------------------------------------
// Rendering and merging
// ---------------------------------------------------------------------------

/// Merges per-shard registries in shard order into one deployment-wide registry — the
/// metrics-side analogue of the reactor pool's `fold_stats`.
pub fn merge_metrics<'a>(reports: impl IntoIterator<Item = &'a Report>) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for report in reports {
        merged.merge(&report.metrics);
    }
    merged
}

/// Renders per-shard reports as one line of chrome://tracing-compatible JSON (the "complete
/// event" array form: load the file at `chrome://tracing` or <https://ui.perfetto.dev>). Each
/// span is an `"X"` event with `ts`/`dur` in the recording clock's units, `tid` = reactor
/// shard, and `args.seq`/`args.parent` carrying the parent/child links. Shards render in the
/// given (shard) order, so the output is deterministic whenever the reports are.
pub fn trace_json(reports: &[Report]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for report in reports {
        for span in &report.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_json_str(&mut out, span.name);
            let _ = write!(
                out,
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"seq\":{}",
                span.start,
                span.end.saturating_sub(span.start),
                report.shard,
                span.seq,
            );
            if let Some(parent) = span.parent {
                let _ = write!(out, ",\"parent\":{parent}");
            }
            out.push_str("}}");
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_quantiles_and_merge() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        // Ranks: p50 is the 3rd observation (value 2, bucket upper 3); p99 the 5th.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.99), 1000);
        // The max clamps the top bucket's upper bound (1023) to the exact observation.
        assert_eq!(h.quantile(1.0), 1000);

        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);

        // Merge in either order produces the same histogram.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5, 9] {
            a.record(v);
        }
        for v in [70, 0] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn bucket_edges_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn registry_json_is_deterministic_and_escaped() {
        let mut registry = MetricsRegistry::new();
        registry.add("b.two", 2);
        registry.add("a.one", 1);
        registry.observe("lat", 7);
        let json = registry.to_json();
        // BTreeMap order: a.one before b.two, regardless of insertion order.
        assert!(json.starts_with("{\"counters\":{\"a.one\":1,\"b.two\":2},"), "{json}");
        assert!(json.contains("\"lat\":{\"count\":1,\"sum\":7,\"max\":7"), "{json}");
        assert!(!json.contains('\n'));

        let mut escaped = String::new();
        push_json_str(&mut escaped, "a\"b\\c\nd");
        assert_eq!(escaped, "\"a\\\"b\\\\c\\nd\"");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_nest_metrics_count_and_reports_harvest() {
        install(Collector::new(ClockHandle::monotonic(), 3).with_ring_cap(2));
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                count("seen", 2);
            }
            observe("depth", 1);
        }
        {
            let _tail = span("tail");
        }
        assert!(active());
        let mid = snapshot().expect("collector installed");
        assert_eq!(mid.shard, 3);
        let report = uninstall().expect("collector installed");
        assert!(!active());
        assert_eq!(uninstall(), None, "already uninstalled");
        // Ring cap 2: "inner" (seq 1) and "outer" (seq 0) completed first, then "tail"
        // evicted the oldest completed record ("inner").
        assert_eq!(report.dropped_spans, 1);
        let names: Vec<&str> = report.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["outer", "tail"]);
        assert_eq!(report.spans[1].parent, None);
        assert_eq!(report.metrics.counter("seen"), 2);
        assert_eq!(report.metrics.histogram("depth").unwrap().count(), 1);
        assert_eq!(mid.metrics, report.metrics);

        // The evicted "inner" span carried parent seq 0 while it was in the ring; what
        // remains still renders as valid chrome JSON.
        let json = trace_json(std::slice::from_ref(&report));
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"name\":\"outer\"") && json.contains("\"tid\":3"), "{json}");
        assert!(!json.contains('\n'));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn virtual_clocks_make_spans_deterministic() {
        let clock = VirtualClock::new();
        install(Collector::new(ClockHandle::Virtual(clock.clone()), 0));
        clock.set(10);
        {
            let _a = span("a");
            clock.set(14);
        }
        clock.advance(1);
        {
            let _b = span("b");
        }
        let report = uninstall().unwrap();
        assert_eq!((report.spans[0].start, report.spans[0].end), (10, 14));
        assert_eq!((report.spans[1].start, report.spans[1].end), (15, 15));
        let json = trace_json(std::slice::from_ref(&report));
        assert!(json.contains("\"ts\":10,\"dur\":4"), "{json}");
    }

    #[test]
    fn sink_slots_deduplicate_by_name_across_addresses() {
        // Two copies of the same name at different addresses (as two instantiation sites of
        // one literal may be): both resolve to one slot, aggregation stays by name.
        let mut sink = MetricsSink::default();
        let a: &'static str = Box::leak(String::from("wire.requests").into_boxed_str());
        let b: &'static str = Box::leak(String::from("wire.requests").into_boxed_str());
        assert_ne!(a.as_ptr(), b.as_ptr());
        sink.add(a, 1);
        sink.add(b, 2);
        sink.observe(a, 5);
        sink.observe(b, 9);
        assert_eq!(sink.counters.names.len(), 1);
        assert_eq!(sink.counters.cache.len(), 2);
        let registry = sink.to_registry();
        assert_eq!(registry.counter("wire.requests"), 3);
        let histogram = registry.histogram("wire.requests").expect("observed");
        assert_eq!((histogram.count(), histogram.max()), (2, 9));
    }

    #[test]
    fn merge_metrics_folds_shard_reports() {
        let mut a = MetricsRegistry::new();
        a.add("requests", 3);
        a.observe("lat", 4);
        let mut b = MetricsRegistry::new();
        b.add("requests", 5);
        b.observe("lat", 100);
        let reports = [
            Report { shard: 0, spans: Vec::new(), dropped_spans: 0, metrics: a },
            Report { shard: 1, spans: Vec::new(), dropped_spans: 0, metrics: b },
        ];
        let merged = merge_metrics(&reports);
        assert_eq!(merged.counter("requests"), 8);
        let lat = merged.histogram("lat").unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.max(), 100);
    }

    #[test]
    fn without_a_collector_everything_is_inert() {
        // No install on this thread: guards, counters and timers all no-op.
        assert!(!active());
        let _guard = span("nobody.listens");
        count("nobody", 1);
        observe("nobody", 1);
        let out = time("nobody", || 42);
        assert_eq!(out, 42);
        assert_eq!(snapshot(), None);
    }
}
