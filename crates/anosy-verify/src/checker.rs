//! The verifier: discharges refinement specifications with the solver.

use crate::{ObligationOutcome, ObligationResult, RefinementSpec, VerificationReport};
use anosy_domains::{laws, AbstractDomain};
use anosy_logic::{IntBox, Point, PredId, SecretLayout, StoreStats};
use anosy_solver::{Solver, SolverConfig, SolverError, ValidityOutcome};
use anosy_synth::{ApproxKind, IndSets, QueryDef};
use std::collections::HashMap;
use std::time::Instant;

/// Checks synthesized (or hand-written) knowledge approximations against their refinement
/// specifications — the role Liquid Haskell plays in the paper's pipeline (§2.3, Step IV).
///
/// Obligations are canonicalized into the solver's hash-consed term store before being
/// discharged: two obligations whose simplified forms are id-equal share one solver run, and an
/// obligation that simplifies to `true` is accepted without any search. The deep tree
/// comparisons the checker previously performed are now `u32` id comparisons.
#[derive(Debug)]
pub struct Verifier {
    solver: Solver,
    /// Obligations discharged so far this session, keyed by canonical (simplified) id and the
    /// space they were quantified over (validity depends on both).
    discharged: HashMap<(PredId, IntBox), ObligationOutcome>,
    /// Obligations answered from `discharged` instead of a fresh solver run.
    dedup_hits: u64,
}

impl Verifier {
    /// Creates a verifier with the default solver budgets.
    pub fn new() -> Self {
        Verifier::with_config(SolverConfig::default())
    }

    /// Creates a verifier with explicit solver budgets.
    pub fn with_config(config: SolverConfig) -> Self {
        Verifier { solver: Solver::with_config(config), discharged: HashMap::new(), dedup_hits: 0 }
    }

    /// Number of obligations answered from the id-keyed result cache instead of a solver run.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Hit/miss counters of the underlying solver's term-store memo tables.
    pub fn store_stats(&self) -> StoreStats {
        self.solver.store_stats()
    }

    /// Discharges every obligation of a specification.
    ///
    /// Budget exhaustion on an individual obligation is recorded as
    /// [`ObligationOutcome::Undecided`] rather than aborting the whole report, so a report always
    /// covers every obligation.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ArityMismatch`] if an obligation mentions fields outside the
    /// specification's layout (a malformed spec rather than a failed proof).
    pub fn verify_spec(
        &mut self,
        spec: &RefinementSpec,
    ) -> Result<VerificationReport, SolverError> {
        let started = Instant::now();
        let space = spec.layout.space();
        let mut results = Vec::with_capacity(spec.obligations.len());
        for obligation in &spec.obligations {
            let o_started = Instant::now();
            // Canonicalize: obligations are compared (against each other and against `true`) by
            // interned id, not by deep tree equality. Validity depends on the quantified space,
            // so the cache key carries it; counterexamples stay valid across specs that share it.
            let id = self.solver.intern_simplified(&obligation.pred);
            let trivially_true = id == self.solver.store_mut().mk_true();
            let key = (id, space.clone());
            let outcome = if trivially_true {
                ObligationOutcome::Valid
            } else if let Some(cached) = self.discharged.get(&key) {
                self.dedup_hits += 1;
                cached.clone()
            } else {
                let fresh = match self.solver.check_validity_id(id, &space) {
                    Ok(ValidityOutcome::Valid) => ObligationOutcome::Valid,
                    Ok(ValidityOutcome::CounterExample(p)) => ObligationOutcome::CounterExample(p),
                    Err(SolverError::BudgetExhausted { limit, explored }) => {
                        ObligationOutcome::Undecided(format!(
                            "solver {limit} budget exhausted after {explored} boxes"
                        ))
                    }
                    Err(other) => return Err(other),
                };
                // Budget exhaustion is not a verdict: leave it uncached so a later attempt (or a
                // verifier with larger budgets reusing this report) can retry.
                if !matches!(fresh, ObligationOutcome::Undecided(_)) {
                    self.discharged.insert(key, fresh.clone());
                }
                fresh
            };
            results.push(ObligationResult {
                name: obligation.name.clone(),
                outcome,
                elapsed: o_started.elapsed(),
            });
        }
        Ok(VerificationReport {
            description: spec.description.clone(),
            results,
            elapsed: started.elapsed(),
        })
    }

    /// Verifies the ind. sets of a query against the specification of Fig. 4.
    ///
    /// # Errors
    ///
    /// See [`Verifier::verify_spec`].
    pub fn verify_indsets<D: AbstractDomain>(
        &mut self,
        query: &QueryDef,
        indsets: &IndSets<D>,
    ) -> Result<VerificationReport, SolverError> {
        let spec = RefinementSpec::for_indsets(
            format!("{} ind. sets ({})", query.name(), indsets.kind()),
            query.layout().clone(),
            query.pred(),
            indsets.kind(),
            indsets.truthy().to_pred(),
            indsets.falsy().to_pred(),
        );
        self.verify_spec(&spec)
    }

    /// Verifies a posterior computation: given prior knowledge and the two posterior branches,
    /// checks the strengthened specification of Fig. 4 (`underapprox` / `overapprox`).
    ///
    /// # Errors
    ///
    /// See [`Verifier::verify_spec`].
    pub fn verify_posterior<D: AbstractDomain>(
        &mut self,
        query: &QueryDef,
        kind: ApproxKind,
        prior: &D,
        posterior_true: &D,
        posterior_false: &D,
    ) -> Result<VerificationReport, SolverError> {
        let spec = RefinementSpec::for_posterior(
            format!("{} posterior ({kind})", query.name()),
            query.layout().clone(),
            query.pred(),
            kind,
            prior.to_pred(),
            posterior_true.to_pred(),
            posterior_false.to_pred(),
        );
        self.verify_spec(&spec)
    }

    /// Re-checks the `AbstractDomain` class laws (Fig. 3) on concrete elements, sampling
    /// membership at the corners and centres of the elements' bounding boxes plus the space
    /// corners. Cheap and deterministic; the domains' own property-based suites provide the
    /// randomized coverage.
    pub fn verify_domain_laws<D: AbstractDomain>(
        &mut self,
        layout: &SecretLayout,
        elements: &[D],
    ) -> VerificationReport {
        let started = Instant::now();
        let samples = law_sample_points(layout, elements);
        let violations = laws::check_all_laws(elements, &samples);
        let results = if violations.is_empty() {
            vec![ObligationResult {
                name: format!(
                    "class laws on {} elements × {} samples",
                    elements.len(),
                    samples.len()
                ),
                outcome: ObligationOutcome::Valid,
                elapsed: started.elapsed(),
            }]
        } else {
            violations
                .into_iter()
                .map(|v| ObligationResult {
                    name: v.law.to_string(),
                    outcome: ObligationOutcome::Undecided(v.detail),
                    elapsed: started.elapsed(),
                })
                .collect()
        };
        VerificationReport {
            description: "AbstractDomain class laws".into(),
            results,
            elapsed: started.elapsed(),
        }
    }
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

/// Sample points for law checking: space corners, element bounding-box corners and centres.
fn law_sample_points<D: AbstractDomain>(layout: &SecretLayout, elements: &[D]) -> Vec<Point> {
    let mut boxes = vec![layout.space()];
    boxes.extend(elements.iter().filter_map(|d| d.bounding_box()));
    let mut points = Vec::new();
    for b in boxes {
        // Corners (2^n, capped by skipping when arity is large) and the centre.
        let arity = b.arity();
        if arity <= 12 {
            for mask in 0..(1u32 << arity.min(12)) {
                let p: Point = (0..arity)
                    .map(|d| if mask & (1 << d) == 0 { b.dim(d).lo() } else { b.dim(d).hi() })
                    .collect();
                points.push(p);
            }
        }
        let centre: Point = (0..arity)
            .map(|d| {
                let r = b.dim(d);
                r.lo() + ((r.hi() as i128 - r.lo() as i128) / 2) as i64
            })
            .collect();
        points.push(centre);
    }
    points.sort();
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_domains::{AInt, IntervalDomain, PowersetDomain};
    use anosy_logic::IntExpr;
    use anosy_synth::{SynthConfig, Synthesizer};

    fn loc_layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
    }

    fn nearby_query() -> QueryDef {
        let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
        QueryDef::new("nearby_200_200", loc_layout(), nearby).unwrap()
    }

    fn verifier() -> Verifier {
        Verifier::with_config(SolverConfig::for_tests())
    }

    #[test]
    fn the_papers_hand_written_indsets_verify() {
        // §2.2's under_indset for nearby (200,200).
        let indsets = IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
        );
        let report = verifier().verify_indsets(&nearby_query(), &indsets).unwrap();
        assert!(report.is_verified(), "{report}");
        assert_eq!(report.results.len(), 2);
    }

    #[test]
    fn repeated_obligations_are_deduplicated_by_id() {
        // Re-verifying the same ind. sets submits obligations whose canonical ids are already in
        // the discharged cache: the second report is produced without any new solver search.
        let indsets = IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
        );
        let mut v = verifier();
        let first = v.verify_indsets(&nearby_query(), &indsets).unwrap();
        assert!(first.is_verified());
        assert_eq!(v.dedup_hits(), 0);
        let nodes_after_first = v.solver.stats().nodes_explored;
        let second = v.verify_indsets(&nearby_query(), &indsets).unwrap();
        assert!(second.is_verified());
        assert_eq!(v.dedup_hits(), 2, "both obligations should be cache hits");
        assert_eq!(
            v.solver.stats().nodes_explored,
            nodes_after_first,
            "cached obligations must not search"
        );
    }

    #[test]
    fn trivially_true_obligations_skip_the_solver() {
        use anosy_logic::Pred;
        let spec = RefinementSpec {
            description: "tautology".into(),
            layout: loc_layout(),
            obligations: vec![crate::Obligation::new(
                "true: anything implies itself",
                IntExpr::var(0).le(7).implies(IntExpr::var(0).le(7).or_else(Pred::True)),
            )],
        };
        let mut v = verifier();
        let report = v.verify_spec(&spec).unwrap();
        assert!(report.is_verified());
        assert_eq!(v.solver.stats().queries, 0, "simplification alone should discharge it");
    }

    #[test]
    fn broken_indsets_produce_counterexamples() {
        // Stretch the True set one unit too far: (120, 179) is 81 + 21 = 102 > 100 away.
        let indsets = IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(120, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
        );
        let report = verifier().verify_indsets(&nearby_query(), &indsets).unwrap();
        assert!(!report.is_verified());
        let cexs = report.counterexamples();
        assert_eq!(cexs.len(), 1);
        assert!(!nearby_query().ask(cexs[0].1));
    }

    #[test]
    fn synthesized_approximations_verify_for_all_kinds_and_domains() {
        let query = nearby_query();
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        let mut verifier = verifier();
        for kind in ApproxKind::ALL {
            let interval = synth.synth_interval(&query, kind).unwrap();
            assert!(verifier.verify_indsets(&query, &interval).unwrap().is_verified());
            let powerset = synth.synth_powerset(&query, kind, 3).unwrap();
            assert!(verifier.verify_indsets(&query, &powerset).unwrap().is_verified());
        }
    }

    #[test]
    fn posterior_specification_is_checked() {
        let query = nearby_query();
        let mut synth =
            Synthesizer::with_config(SynthConfig::new().with_solver(SolverConfig::for_tests()));
        let ind = synth.synth_interval(&query, ApproxKind::Under).unwrap();
        let prior = IntervalDomain::from_intervals(vec![AInt::new(100, 200), AInt::new(100, 300)]);
        let (post_t, post_f) = ind.posterior(&prior);
        let report = verifier()
            .verify_posterior(&query, ApproxKind::Under, &prior, &post_t, &post_f)
            .unwrap();
        assert!(report.is_verified(), "{report}");
        // A posterior that "forgets" the prior violates the spec: the raw True ind. set
        // (x ∈ [150, 250]) sticks out of this prior (x ≤ 200).
        let bogus = verifier()
            .verify_posterior(&query, ApproxKind::Under, &prior, ind.truthy(), &post_f)
            .unwrap();
        assert!(!bogus.is_verified());
    }

    #[test]
    fn over_approximation_failures_are_caught() {
        // An over-approximation that misses part of the diamond.
        let indsets = IndSets::new(
            ApproxKind::Over,
            IntervalDomain::from_intervals(vec![AInt::new(150, 250), AInt::new(150, 250)]),
            IntervalDomain::top(&loc_layout()),
        );
        let report = verifier().verify_indsets(&nearby_query(), &indsets).unwrap();
        assert!(!report.is_verified());
    }

    #[test]
    fn class_laws_are_rechecked_on_concrete_elements() {
        let l = loc_layout();
        let elements = vec![
            PowersetDomain::top(&l),
            PowersetDomain::bottom(&l),
            PowersetDomain::from_interval(IntervalDomain::from_intervals(vec![
                AInt::new(121, 279),
                AInt::new(179, 221),
            ])),
        ];
        let report = verifier().verify_domain_laws(&l, &elements);
        assert!(report.is_verified(), "{report}");
    }

    #[test]
    fn malformed_specs_surface_as_errors() {
        let spec = RefinementSpec {
            description: "bad".into(),
            layout: SecretLayout::builder().field("x", 0, 1).build(),
            obligations: vec![crate::Obligation::new("oops", IntExpr::var(5).le(0))],
        };
        let err = verifier().verify_spec(&spec).unwrap_err();
        assert!(matches!(err, SolverError::ArityMismatch { .. }));
    }

    #[test]
    fn budget_exhaustion_is_reported_as_undecided() {
        let mut tight = Verifier::with_config(SolverConfig::new().with_max_nodes(0));
        let query = nearby_query();
        let indsets = IndSets::new(
            ApproxKind::Under,
            IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]),
            IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]),
        );
        let report = tight.verify_indsets(&query, &indsets).unwrap();
        assert!(!report.is_verified());
        assert!(!report.undecided().is_empty());
    }
}
