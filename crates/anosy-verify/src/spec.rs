//! Refinement specifications: the executable form of the paper's refinement types (Fig. 4).

use anosy_logic::{Pred, SecretLayout};
use anosy_synth::ApproxKind;
use std::fmt;

/// A single proof obligation: `pred` must hold for **every** secret of the layout's space.
#[derive(Debug, Clone, PartialEq)]
pub struct Obligation {
    /// Human-readable name, e.g. `"under/true: dom ⇒ query"`.
    pub name: String,
    /// The universally-quantified predicate to discharge.
    pub pred: Pred,
}

impl Obligation {
    /// Creates an obligation.
    pub fn new(name: impl Into<String>, pred: Pred) -> Self {
        Obligation { name: name.into(), pred }
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∀ s ∈ space. {}   [{}]", self.pred, self.name)
    }
}

/// A bundle of obligations with a description, corresponding to one refinement-typed definition
/// of the paper (an ind. set pair, a posterior function, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementSpec {
    /// What is being specified (for reports).
    pub description: String,
    /// The secret layout over which the obligations are quantified.
    pub layout: SecretLayout,
    /// The obligations to discharge.
    pub obligations: Vec<Obligation>,
}

impl RefinementSpec {
    /// The specification of a query's ind. sets (Fig. 4, `under_indset` / `over_indset`).
    ///
    /// `truthy` and `falsy` are the membership predicates of the candidate abstract-domain
    /// elements (from [`anosy_domains::AbstractDomain::to_pred`]).
    pub fn for_indsets(
        description: impl Into<String>,
        layout: SecretLayout,
        query: &Pred,
        kind: ApproxKind,
        truthy: Pred,
        falsy: Pred,
    ) -> Self {
        let not_query = query.clone().negate();
        let obligations = match kind {
            ApproxKind::Under => vec![
                Obligation::new("under/true: dom ⇒ query", truthy.implies(query.clone())),
                Obligation::new("under/false: dom ⇒ ¬query", falsy.implies(not_query)),
            ],
            ApproxKind::Over => vec![
                Obligation::new("over/true: query ⇒ dom", query.clone().implies(truthy)),
                Obligation::new("over/false: ¬query ⇒ dom", not_query.implies(falsy)),
            ],
        };
        RefinementSpec { description: description.into(), layout, obligations }
    }

    /// The specification of a posterior computation (Fig. 4, `underapprox` / `overapprox`): the
    /// ind. set obligations strengthened with the prior.
    pub fn for_posterior(
        description: impl Into<String>,
        layout: SecretLayout,
        query: &Pred,
        kind: ApproxKind,
        prior: Pred,
        posterior_true: Pred,
        posterior_false: Pred,
    ) -> Self {
        let not_query = query.clone().negate();
        let in_true = Pred::and(vec![query.clone(), prior.clone()]);
        let in_false = Pred::and(vec![not_query, prior]);
        let obligations = match kind {
            ApproxKind::Under => vec![
                Obligation::new(
                    "under/true: post ⇒ query ∧ prior",
                    posterior_true.implies(in_true),
                ),
                Obligation::new(
                    "under/false: post ⇒ ¬query ∧ prior",
                    posterior_false.implies(in_false),
                ),
            ],
            ApproxKind::Over => vec![
                Obligation::new("over/true: query ∧ prior ⇒ post", in_true.implies(posterior_true)),
                Obligation::new(
                    "over/false: ¬query ∧ prior ⇒ post",
                    in_false.implies(posterior_false),
                ),
            ],
        };
        RefinementSpec { description: description.into(), layout, obligations }
    }
}

impl fmt::Display for RefinementSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} obligations):", self.description, self.obligations.len())?;
        for o in &self.obligations {
            writeln!(f, "  {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy_logic::IntExpr;

    fn layout() -> SecretLayout {
        SecretLayout::builder().field("x", 0, 10).build()
    }

    #[test]
    fn indset_spec_shapes() {
        let q = IntExpr::var(0).le(5);
        let under = RefinementSpec::for_indsets(
            "q ind. sets",
            layout(),
            &q,
            ApproxKind::Under,
            IntExpr::var(0).le(3),
            IntExpr::var(0).ge(6),
        );
        assert_eq!(under.obligations.len(), 2);
        assert!(under.obligations[0].name.contains("under/true"));
        let over = RefinementSpec::for_indsets(
            "q ind. sets",
            layout(),
            &q,
            ApproxKind::Over,
            IntExpr::var(0).le(5),
            IntExpr::var(0).ge(6),
        );
        assert!(over.obligations[0].name.contains("over/true"));
    }

    #[test]
    fn posterior_spec_mentions_the_prior() {
        let q = IntExpr::var(0).le(5);
        let spec = RefinementSpec::for_posterior(
            "posterior",
            layout(),
            &q,
            ApproxKind::Under,
            IntExpr::var(0).ge(2),
            IntExpr::var(0).between(2, 5),
            IntExpr::var(0).ge(6),
        );
        assert_eq!(spec.obligations.len(), 2);
        for o in &spec.obligations {
            assert!(o.pred.node_count() > 3);
        }
    }

    #[test]
    fn display_lists_obligations() {
        let q = IntExpr::var(0).le(5);
        let spec = RefinementSpec::for_indsets(
            "demo",
            layout(),
            &q,
            ApproxKind::Under,
            Pred::False,
            Pred::False,
        );
        let text = spec.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("∀ s ∈ space"));
    }
}
