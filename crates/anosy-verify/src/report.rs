//! Verification reports.

use anosy_logic::Point;
use std::fmt;
use std::time::Duration;

/// The outcome of discharging a single obligation.
#[derive(Debug, Clone, PartialEq)]
pub enum ObligationOutcome {
    /// The obligation holds for every secret.
    Valid,
    /// The obligation fails at this secret.
    CounterExample(Point),
    /// The obligation could not be decided (budget exhausted or malformed input).
    Undecided(String),
}

impl ObligationOutcome {
    /// `true` only for [`ObligationOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, ObligationOutcome::Valid)
    }
}

/// The result of one obligation, with timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ObligationResult {
    /// The obligation's name.
    pub name: String,
    /// What happened.
    pub outcome: ObligationOutcome,
    /// Time spent discharging the obligation.
    pub elapsed: Duration,
}

/// The result of verifying one refinement specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VerificationReport {
    /// What was verified (mirrors [`crate::RefinementSpec::description`]).
    pub description: String,
    /// Per-obligation results.
    pub results: Vec<ObligationResult>,
    /// Total wall-clock time (the *Verif. time* of Fig. 5).
    pub elapsed: Duration,
}

impl VerificationReport {
    /// `true` when every obligation is valid.
    pub fn is_verified(&self) -> bool {
        !self.results.is_empty() && self.results.iter().all(|r| r.outcome.is_valid())
    }

    /// Counterexamples of failed obligations, with the obligation names.
    pub fn counterexamples(&self) -> Vec<(&str, &Point)> {
        self.results
            .iter()
            .filter_map(|r| match &r.outcome {
                ObligationOutcome::CounterExample(p) => Some((r.name.as_str(), p)),
                _ => None,
            })
            .collect()
    }

    /// Names of obligations that could not be decided.
    pub fn undecided(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, ObligationOutcome::Undecided(_)))
            .map(|r| r.name.as_str())
            .collect()
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} ({} obligations, {:.3}s)",
            self.description,
            if self.is_verified() { "VERIFIED" } else { "NOT VERIFIED" },
            self.results.len(),
            self.elapsed.as_secs_f64()
        )?;
        for r in &self.results {
            let status = match &r.outcome {
                ObligationOutcome::Valid => "ok".to_string(),
                ObligationOutcome::CounterExample(p) => format!("counterexample {p}"),
                ObligationOutcome::Undecided(why) => format!("undecided ({why})"),
            };
            writeln!(f, "  - {}: {status}", r.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(name: &str) -> ObligationResult {
        ObligationResult {
            name: name.into(),
            outcome: ObligationOutcome::Valid,
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn empty_report_is_not_verified() {
        assert!(!VerificationReport::default().is_verified());
    }

    #[test]
    fn verified_requires_all_obligations_valid() {
        let mut report = VerificationReport {
            description: "demo".into(),
            results: vec![ok("a"), ok("b")],
            elapsed: Duration::from_millis(2),
        };
        assert!(report.is_verified());
        report.results.push(ObligationResult {
            name: "c".into(),
            outcome: ObligationOutcome::CounterExample(Point::new(vec![3])),
            elapsed: Duration::ZERO,
        });
        assert!(!report.is_verified());
        assert_eq!(report.counterexamples().len(), 1);
        assert_eq!(report.counterexamples()[0].0, "c");
        report.results.push(ObligationResult {
            name: "d".into(),
            outcome: ObligationOutcome::Undecided("budget".into()),
            elapsed: Duration::ZERO,
        });
        assert_eq!(report.undecided(), vec!["d"]);
    }

    #[test]
    fn display_mentions_status_and_counterexamples() {
        let report = VerificationReport {
            description: "demo".into(),
            results: vec![
                ok("a"),
                ObligationResult {
                    name: "bad".into(),
                    outcome: ObligationOutcome::CounterExample(Point::new(vec![1, 2])),
                    elapsed: Duration::ZERO,
                },
            ],
            elapsed: Duration::from_millis(3),
        };
        let text = report.to_string();
        assert!(text.contains("NOT VERIFIED"));
        assert!(text.contains("counterexample (1, 2)"));
    }
}
