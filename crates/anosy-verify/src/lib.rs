//! Machine-checking of knowledge approximations — the Liquid Haskell stand-in.
//!
//! In the paper, every synthesized ind. set and posterior function carries a refinement type
//! (Fig. 4) whose proof obligations Liquid Haskell discharges with an SMT solver. This crate
//! plays that role for ANOSY-RS: a [`RefinementSpec`] is the executable form of those refinement
//! types, and a [`Verifier`] discharges each obligation with the `anosy-solver` decision
//! procedures, producing a [`VerificationReport`] with per-obligation outcomes, counterexamples
//! and timings (the *Verif. time* column of Fig. 5).
//!
//! The checks are:
//!
//! * **ind. set specs** — under-approximation: every secret in the `true` (resp. `false`) set
//!   satisfies (resp. falsifies) the query; over-approximation: every satisfying (resp.
//!   falsifying) secret is in the `true` (resp. `false`) set;
//! * **posterior specs** — the posterior additionally stays inside (under) or outside of nothing
//!   but (over) the prior, mirroring Fig. 4's strengthened indexes;
//! * **class laws** — the `AbstractDomain` laws of Fig. 3, re-checked on the concrete elements
//!   involved.
//!
//! # Example
//!
//! ```
//! use anosy_logic::{IntExpr, SecretLayout};
//! use anosy_synth::{ApproxKind, QueryDef, Synthesizer};
//! use anosy_verify::Verifier;
//!
//! let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
//! let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
//! let query = QueryDef::new("nearby", layout, nearby).unwrap();
//!
//! let mut synth = Synthesizer::new();
//! let ind = synth.synth_interval(&query, ApproxKind::Under).unwrap();
//!
//! let mut verifier = Verifier::new();
//! let report = verifier.verify_indsets(&query, &ind).unwrap();
//! assert!(report.is_verified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod report;
mod spec;

pub use checker::Verifier;
pub use report::{ObligationOutcome, ObligationResult, VerificationReport};
pub use spec::{Obligation, RefinementSpec};
