//! Labeled values.

use crate::Label;
use std::fmt;

/// A value protected by a security label.
///
/// The payload is private: the only ways to observe it are [`crate::Lio::unlabel`] (which taints
/// the calling context) and [`Labeled::peek_tcb`] (which is part of the trusted computing base,
/// exactly like LIO's `unlabelTCB` that the paper's `downgrade` relies on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeled<L, T> {
    label: L,
    value: T,
}

impl<L: Label, T> Labeled<L, T> {
    /// Creates a labeled value. Library users normally go through [`crate::Lio::label`], which
    /// additionally checks the floating-label discipline.
    pub fn new(label: L, value: T) -> Self {
        Labeled { label, value }
    }

    /// The label protecting the value.
    pub fn label(&self) -> &L {
        &self.label
    }

    /// Trusted access to the payload, bypassing the IFC discipline.
    ///
    /// This is the substrate's `unlabelTCB`: callers take on the obligation of not leaking the
    /// result. Inside ANOSY-RS only the bounded downgrade (after its policy check) and tests use
    /// it.
    pub fn peek_tcb(&self) -> &T {
        &self.value
    }

    /// Maps the payload while keeping the label (a trusted operation for the same reason as
    /// [`Labeled::peek_tcb`] — the closure sees the secret).
    pub fn map_tcb<U>(self, f: impl FnOnce(T) -> U) -> Labeled<L, U> {
        Labeled { label: self.label, value: f(self.value) }
    }
}

impl<L: Label, T> fmt::Display for Labeled<L, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately does not display the payload.
        write!(f, "<{} value>", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecLevel;

    #[test]
    fn label_is_observable_but_payload_is_not_displayed() {
        let v = Labeled::new(SecLevel::Secret, (300, 200));
        assert_eq!(*v.label(), SecLevel::Secret);
        let shown = v.to_string();
        assert!(shown.contains("Secret"));
        assert!(!shown.contains("300"), "display must not leak the payload");
    }

    #[test]
    fn tcb_access_and_map() {
        let v = Labeled::new(SecLevel::Secret, 41);
        assert_eq!(*v.peek_tcb(), 41);
        let w = v.map_tcb(|x| x + 1);
        assert_eq!(*w.peek_tcb(), 42);
        assert_eq!(*w.label(), SecLevel::Secret);
    }
}
