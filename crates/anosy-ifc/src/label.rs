//! Security label lattices.

use std::collections::BTreeSet;
use std::fmt;

/// A security label forming a bounded lattice under the "can flow to" order.
///
/// `bottom` is the most public label, `top` the most secret. `a.can_flow_to(&b)` means data
/// labeled `a` may influence data labeled `b` (i.e. `a ⊑ b`).
pub trait Label: Clone + PartialEq + fmt::Debug + fmt::Display {
    /// The most public label.
    fn bottom() -> Self;

    /// The most secret label.
    fn top() -> Self;

    /// The partial order of the lattice.
    fn can_flow_to(&self, other: &Self) -> bool;

    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;

    /// Greatest lower bound.
    fn meet(&self, other: &Self) -> Self;
}

/// The two-point lattice `Public ⊑ Secret`, enough for every example in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecLevel {
    /// Observable by anyone (the attacker's level).
    Public,
    /// Observable only by the trusted application code.
    Secret,
}

impl Label for SecLevel {
    fn bottom() -> Self {
        SecLevel::Public
    }

    fn top() -> Self {
        SecLevel::Secret
    }

    fn can_flow_to(&self, other: &Self) -> bool {
        self <= other
    }

    fn join(&self, other: &Self) -> Self {
        *self.max(other)
    }

    fn meet(&self, other: &Self) -> Self {
        *self.min(other)
    }
}

impl fmt::Display for SecLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecLevel::Public => write!(f, "Public"),
            SecLevel::Secret => write!(f, "Secret"),
        }
    }
}

/// A DCLabel-style readers label: the set of principals allowed to observe the data.
///
/// Data may flow towards labels with **fewer** readers (restricting the audience); `bottom` is
/// "everyone may read" (represented as the absence of a restriction) and `top` is "nobody may
/// read".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadersLabel {
    /// `None` means unrestricted (public); `Some(set)` restricts observation to the given
    /// principals.
    readers: Option<BTreeSet<String>>,
}

impl ReadersLabel {
    /// The public label (anyone may read).
    pub fn public() -> Self {
        ReadersLabel { readers: None }
    }

    /// A label readable only by the given principals.
    pub fn readable_by<I, S>(principals: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ReadersLabel { readers: Some(principals.into_iter().map(Into::into).collect()) }
    }

    /// The set of allowed readers, or `None` when unrestricted.
    pub fn readers(&self) -> Option<&BTreeSet<String>> {
        self.readers.as_ref()
    }
}

impl Label for ReadersLabel {
    fn bottom() -> Self {
        ReadersLabel::public()
    }

    fn top() -> Self {
        ReadersLabel { readers: Some(BTreeSet::new()) }
    }

    fn can_flow_to(&self, other: &Self) -> bool {
        match (&self.readers, &other.readers) {
            (None, _) => true,                    // public flows anywhere
            (Some(_), None) => false,             // restricted data may not become public
            (Some(a), Some(b)) => b.is_subset(a), // audience may only shrink
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (&self.readers, &other.readers) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => {
                ReadersLabel { readers: Some(a.intersection(b).cloned().collect()) }
            }
        }
    }

    fn meet(&self, other: &Self) -> Self {
        match (&self.readers, &other.readers) {
            (None, _) | (_, None) => ReadersLabel::public(),
            (Some(a), Some(b)) => ReadersLabel { readers: Some(a.union(b).cloned().collect()) },
        }
    }
}

impl fmt::Display for ReadersLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.readers {
            None => write!(f, "⟨public⟩"),
            Some(set) if set.is_empty() => write!(f, "⟨nobody⟩"),
            Some(set) => {
                write!(f, "⟨")?;
                for (i, r) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "⟩")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice_laws<L: Label>(elements: &[L]) {
        for a in elements {
            assert!(L::bottom().can_flow_to(a), "bottom must flow to {a}");
            assert!(a.can_flow_to(&L::top()), "{a} must flow to top");
            assert!(a.can_flow_to(a), "reflexivity at {a}");
            for b in elements {
                let j = a.join(b);
                let m = a.meet(b);
                assert!(a.can_flow_to(&j) && b.can_flow_to(&j), "join upper bound {a} {b}");
                assert!(m.can_flow_to(a) && m.can_flow_to(b), "meet lower bound {a} {b}");
                assert_eq!(a.join(b), b.join(a), "join commutes");
                assert_eq!(a.meet(b), b.meet(a), "meet commutes");
                for c in elements {
                    if a.can_flow_to(b) && b.can_flow_to(c) {
                        assert!(a.can_flow_to(c), "transitivity {a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn sec_level_is_a_lattice() {
        lattice_laws(&[SecLevel::Public, SecLevel::Secret]);
        assert!(SecLevel::Public.can_flow_to(&SecLevel::Secret));
        assert!(!SecLevel::Secret.can_flow_to(&SecLevel::Public));
        assert_eq!(SecLevel::Public.join(&SecLevel::Secret), SecLevel::Secret);
        assert_eq!(SecLevel::Public.meet(&SecLevel::Secret), SecLevel::Public);
    }

    #[test]
    fn readers_label_is_a_lattice() {
        let elements = vec![
            ReadersLabel::public(),
            ReadersLabel::readable_by(["alice", "bob"]),
            ReadersLabel::readable_by(["alice"]),
            ReadersLabel::readable_by(["bob"]),
            ReadersLabel::top(),
        ];
        lattice_laws(&elements);
    }

    #[test]
    fn audience_may_only_shrink() {
        let ab = ReadersLabel::readable_by(["alice", "bob"]);
        let a = ReadersLabel::readable_by(["alice"]);
        assert!(ab.can_flow_to(&a));
        assert!(!a.can_flow_to(&ab));
        assert!(!a.can_flow_to(&ReadersLabel::public()));
        assert_eq!(ab.join(&a), a);
        assert_eq!(ab.meet(&a), ab);
        // Joining disjoint audiences yields the empty audience (top).
        let b = ReadersLabel::readable_by(["bob"]);
        assert_eq!(a.join(&b), ReadersLabel::top());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(SecLevel::Secret.to_string(), "Secret");
        assert_eq!(ReadersLabel::public().to_string(), "⟨public⟩");
        assert_eq!(ReadersLabel::top().to_string(), "⟨nobody⟩");
        assert!(ReadersLabel::readable_by(["alice"]).to_string().contains("alice"));
    }
}
