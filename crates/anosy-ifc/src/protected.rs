//! Protected secrets and the trusted `unprotect` hook (the paper's `Unprotectable` class).

use std::fmt;

/// A secret wrapped so that ordinary code cannot observe it.
///
/// `Protected` is intentionally minimal: it is the argument type of the bounded downgrade, which
/// is the only component entitled to look inside (through the [`Unprotect`] trait) — and it only
/// does so *after* the quantitative policy has authorized the query (§3, Fig. 2).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Protected<T> {
    value: T,
}

impl<T> Protected<T> {
    /// Wraps a secret.
    pub fn new(value: T) -> Self {
        Protected { value }
    }
}

impl<T> From<T> for Protected<T> {
    fn from(value: T) -> Self {
        Protected::new(value)
    }
}

impl<T> fmt::Debug for Protected<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret, even in debug output.
        write!(f, "Protected(<redacted>)")
    }
}

impl<T> fmt::Display for Protected<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Protected(<redacted>)")
    }
}

/// The trusted-computing-base view of a protected container: the paper's
/// `class Unprotectable p where unprotect :: p t -> t`.
pub trait Unprotect {
    /// The secret type inside the container.
    type Target;

    /// Reveals the secret. Trusted: only the bounded downgrade (and tests) may call this.
    fn unprotect_tcb(&self) -> &Self::Target;
}

impl<T> Unprotect for Protected<T> {
    type Target = T;

    fn unprotect_tcb(&self) -> &T {
        &self.value
    }
}

impl<L: crate::Label, T> Unprotect for crate::Labeled<L, T> {
    type Target = T;

    fn unprotect_tcb(&self) -> &T {
        self.peek_tcb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Labeled, SecLevel};

    #[test]
    fn debug_and_display_never_leak() {
        let p = Protected::new((300, 200));
        assert_eq!(format!("{p:?}"), "Protected(<redacted>)");
        assert_eq!(p.to_string(), "Protected(<redacted>)");
    }

    #[test]
    fn unprotect_reveals_for_the_tcb_only_path() {
        let p: Protected<_> = (300i64, 200i64).into();
        assert_eq!(*p.unprotect_tcb(), (300, 200));
    }

    #[test]
    fn labeled_values_are_unprotectable_too() {
        let l = Labeled::new(SecLevel::Secret, 7u8);
        assert_eq!(*l.unprotect_tcb(), 7);
    }
}
