//! A small LIO-style information-flow-control substrate.
//!
//! ANOSY's bounded downgrade is a *monad transformer*: it stages knowledge tracking on top of an
//! existing security monad (LIO, LWeb, STORM) that provides the baseline non-interference
//! enforcement and the trusted `unprotect` operation (§2.1, §3). This crate provides that
//! substrate for ANOSY-RS:
//!
//! * [`Label`] — a security-label lattice, with the two-point [`SecLevel`] lattice and the
//!   reader-set [`ReadersLabel`] as concrete instances;
//! * [`Labeled`] — a value protected by a label; its content is only reachable through a
//!   [`Lio`] context, which tracks the *current label* and *clearance* exactly like LIO's
//!   floating-label monad;
//! * [`Protected`] / [`Unprotect`] — the paper's `Unprotectable` class: the trusted-computing-base
//!   hook the bounded downgrade uses to look at a secret *after* the policy check has authorized
//!   the query.
//!
//! The substrate enforces the usual floating-label discipline: reading a labeled value raises the
//! current label; writing to (creating a value at) a label below the current label is rejected;
//! everything above the clearance is unreachable.
//!
//! # Example
//!
//! ```
//! use anosy_ifc::{Lio, SecLevel, Labeled};
//!
//! let mut lio = Lio::new(SecLevel::Public, SecLevel::Secret);
//! let secret_location = lio.label(SecLevel::Secret, (300i64, 200i64)).unwrap();
//! // Reading the secret taints the context ...
//! let loc = *lio.unlabel(&secret_location).unwrap();
//! assert_eq!(loc, (300, 200));
//! assert_eq!(lio.current_label(), SecLevel::Secret);
//! // ... after which the context can no longer produce Public values.
//! assert!(lio.label(SecLevel::Public, loc.0 + loc.1).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod label;
mod labeled;
mod lio;
mod protected;

pub use error::IfcError;
pub use label::{Label, ReadersLabel, SecLevel};
pub use labeled::Labeled;
pub use lio::Lio;
pub use protected::{Protected, Unprotect};
