//! IFC errors.

use std::fmt;

/// Errors raised by the floating-label discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfcError {
    /// The operation would move information to a label that cannot be reached from the current
    /// label (e.g. creating a `Public` value after reading `Secret` data).
    FlowViolation {
        /// Description of the source label.
        from: String,
        /// Description of the target label.
        to: String,
    },
    /// The operation would raise the current label above the context's clearance.
    ClearanceViolation {
        /// Description of the label that was requested.
        requested: String,
        /// Description of the clearance in force.
        clearance: String,
    },
}

impl fmt::Display for IfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IfcError::FlowViolation { from, to } => {
                write!(f, "information flow from {from} to {to} is not allowed")
            }
            IfcError::ClearanceViolation { requested, clearance } => {
                write!(f, "label {requested} exceeds the clearance {clearance}")
            }
        }
    }
}

impl std::error::Error for IfcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_labels() {
        let e = IfcError::FlowViolation { from: "Secret".into(), to: "Public".into() };
        assert!(e.to_string().contains("Secret"));
        assert!(e.to_string().contains("Public"));
        let c = IfcError::ClearanceViolation {
            requested: "TopSecret".into(),
            clearance: "Secret".into(),
        };
        assert!(c.to_string().contains("clearance"));
    }
}
