//! The floating-label context (LIO's monad, as a stateful context object).

use crate::{IfcError, Label, Labeled};
use std::fmt;

/// An LIO-style computation context: a *current label* that floats upward as secrets are read,
/// bounded by a *clearance*.
///
/// In Haskell this is a monad; in Rust the same discipline is expressed as a mutable context
/// threaded through the computation. The invariant maintained by every operation is
/// `current_label ⊑ clearance`.
#[derive(Debug, Clone, PartialEq)]
pub struct Lio<L: Label> {
    current: L,
    clearance: L,
}

impl<L: Label> Lio<L> {
    /// Creates a context with the given initial current label and clearance.
    ///
    /// # Panics
    ///
    /// Panics if the initial label does not flow to the clearance.
    pub fn new(current: L, clearance: L) -> Self {
        assert!(current.can_flow_to(&clearance), "initial label must be below the clearance");
        Lio { current, clearance }
    }

    /// A context starting fully public with full clearance.
    pub fn unrestricted() -> Self {
        Lio::new(L::bottom(), L::top())
    }

    /// The current (floating) label.
    pub fn current_label(&self) -> L {
        self.current.clone()
    }

    /// The clearance.
    pub fn clearance(&self) -> L {
        self.clearance.clone()
    }

    /// Labels a value, checking that the target label is reachable from the current label and
    /// within the clearance (LIO's `label`).
    ///
    /// # Errors
    ///
    /// [`IfcError::FlowViolation`] if the current label cannot flow to `label`;
    /// [`IfcError::ClearanceViolation`] if `label` exceeds the clearance.
    pub fn label<T>(&mut self, label: L, value: T) -> Result<Labeled<L, T>, IfcError> {
        if !self.current.can_flow_to(&label) {
            return Err(IfcError::FlowViolation {
                from: self.current.to_string(),
                to: label.to_string(),
            });
        }
        if !label.can_flow_to(&self.clearance) {
            return Err(IfcError::ClearanceViolation {
                requested: label.to_string(),
                clearance: self.clearance.to_string(),
            });
        }
        Ok(Labeled::new(label, value))
    }

    /// Reads a labeled value, raising the current label to the join of the current label and the
    /// value's label (LIO's `unlabel`).
    ///
    /// # Errors
    ///
    /// [`IfcError::ClearanceViolation`] if the raised label would exceed the clearance; the
    /// current label is left unchanged in that case.
    pub fn unlabel<'a, T>(&mut self, value: &'a Labeled<L, T>) -> Result<&'a T, IfcError> {
        let raised = self.current.join(value.label());
        if !raised.can_flow_to(&self.clearance) {
            return Err(IfcError::ClearanceViolation {
                requested: raised.to_string(),
                clearance: self.clearance.to_string(),
            });
        }
        self.current = raised;
        Ok(value.peek_tcb())
    }

    /// Raises the current label to at least `label` without reading anything (LIO's `taint`).
    ///
    /// # Errors
    ///
    /// [`IfcError::ClearanceViolation`] if the raised label would exceed the clearance.
    pub fn taint(&mut self, label: &L) -> Result<(), IfcError> {
        let raised = self.current.join(label);
        if !raised.can_flow_to(&self.clearance) {
            return Err(IfcError::ClearanceViolation {
                requested: raised.to_string(),
                clearance: self.clearance.to_string(),
            });
        }
        self.current = raised;
        Ok(())
    }

    /// Checks that the context may currently write to a sink labeled `label` (LIO's
    /// `guardWrite`): the current label must flow to the sink's label.
    ///
    /// # Errors
    ///
    /// [`IfcError::FlowViolation`] when the write would leak.
    pub fn guard_write(&self, label: &L) -> Result<(), IfcError> {
        if self.current.can_flow_to(label) {
            Ok(())
        } else {
            Err(IfcError::FlowViolation { from: self.current.to_string(), to: label.to_string() })
        }
    }

    /// Runs a sub-computation whose taint is discarded afterwards (LIO's `toLabeled`): the
    /// sub-computation's result is returned as a labeled value at `label`, and the current label
    /// of `self` is unchanged.
    ///
    /// # Errors
    ///
    /// Propagates errors from the sub-computation; additionally fails like [`Lio::label`] if the
    /// sub-computation's final label cannot flow to `label`.
    pub fn to_labeled<T>(
        &mut self,
        label: L,
        body: impl FnOnce(&mut Lio<L>) -> Result<T, IfcError>,
    ) -> Result<Labeled<L, T>, IfcError> {
        let mut inner = self.clone();
        let value = body(&mut inner)?;
        if !inner.current.can_flow_to(&label) {
            return Err(IfcError::FlowViolation {
                from: inner.current.to_string(),
                to: label.to_string(),
            });
        }
        if !label.can_flow_to(&self.clearance) {
            return Err(IfcError::ClearanceViolation {
                requested: label.to_string(),
                clearance: self.clearance.to_string(),
            });
        }
        Ok(Labeled::new(label, value))
    }
}

impl<L: Label> fmt::Display for Lio<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lio {{ current: {}, clearance: {} }}", self.current, self.clearance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReadersLabel, SecLevel};

    #[test]
    fn reading_a_secret_taints_the_context() {
        let mut lio = Lio::new(SecLevel::Public, SecLevel::Secret);
        let secret = lio.label(SecLevel::Secret, 42).unwrap();
        assert_eq!(lio.current_label(), SecLevel::Public);
        assert_eq!(*lio.unlabel(&secret).unwrap(), 42);
        assert_eq!(lio.current_label(), SecLevel::Secret);
    }

    #[test]
    fn tainted_contexts_cannot_produce_public_values() {
        let mut lio = Lio::<SecLevel>::unrestricted();
        lio.taint(&SecLevel::Secret).unwrap();
        let err = lio.label(SecLevel::Public, 7).unwrap_err();
        assert!(matches!(err, IfcError::FlowViolation { .. }));
        assert!(lio.guard_write(&SecLevel::Public).is_err());
        assert!(lio.guard_write(&SecLevel::Secret).is_ok());
    }

    #[test]
    fn clearance_bounds_both_label_and_unlabel() {
        let mut lio = Lio::new(SecLevel::Public, SecLevel::Public);
        assert!(matches!(lio.label(SecLevel::Secret, 1), Err(IfcError::ClearanceViolation { .. })));
        let secret = Labeled::new(SecLevel::Secret, 1);
        assert!(matches!(lio.unlabel(&secret), Err(IfcError::ClearanceViolation { .. })));
        // A failed unlabel must not taint the context.
        assert_eq!(lio.current_label(), SecLevel::Public);
        assert!(lio.taint(&SecLevel::Secret).is_err());
    }

    #[test]
    fn to_labeled_discards_the_inner_taint() {
        let mut lio = Lio::<SecLevel>::unrestricted();
        let secret = lio.label(SecLevel::Secret, 10).unwrap();
        let result = lio
            .to_labeled(SecLevel::Secret, |inner| {
                let v = inner.unlabel(&secret)?;
                Ok(v * 2)
            })
            .unwrap();
        assert_eq!(lio.current_label(), SecLevel::Public);
        assert_eq!(*result.peek_tcb(), 20);
        assert_eq!(*result.label(), SecLevel::Secret);
        // The inner computation's taint must flow to the requested label.
        let err = lio.to_labeled(SecLevel::Public, |inner| inner.unlabel(&secret).copied());
        assert!(matches!(err, Err(IfcError::FlowViolation { .. })));
    }

    #[test]
    fn works_with_the_readers_lattice_too() {
        let mut lio = Lio::<ReadersLabel>::unrestricted();
        let for_alice = lio.label(ReadersLabel::readable_by(["alice"]), "medical record").unwrap();
        let _ = lio.unlabel(&for_alice).unwrap();
        // After reading Alice's data the context may not emit to Bob's audience.
        assert!(lio.guard_write(&ReadersLabel::readable_by(["bob"])).is_err());
        assert!(lio.guard_write(&ReadersLabel::readable_by(["alice"])).is_ok());
    }

    #[test]
    #[should_panic(expected = "below the clearance")]
    fn inverted_initial_labels_panic() {
        let _ = Lio::new(SecLevel::Secret, SecLevel::Public);
    }

    #[test]
    fn display_shows_both_labels() {
        let lio = Lio::new(SecLevel::Public, SecLevel::Secret);
        let text = lio.to_string();
        assert!(text.contains("Public") && text.contains("Secret"));
    }
}
