//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy generating an intermediate value and then sampling the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A weighted choice among strategies of a common value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A union of the given `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero or no arm is given.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs at least one arm with nonzero weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if roll < *weight as u64 {
                return strat.generate(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll is below the total weight")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot generate from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from an empty range");
                (self.start..=(self.end - 1)).generate(rng)
            }
        }
    )*};
}

impl_int_range_strategy!(i64, u64, i32, u32, usize, i16, u16, i8, u8);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy defined by a plain function over the RNG — handy for custom recursive generators.
pub struct FromFn<T, F: Fn(&mut TestRng) -> T>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FromFn<T, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a generation function as a [`Strategy`].
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FromFn<T, F> {
    FromFn(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = rng();
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..400 {
            let x = (0i64..=5).generate(&mut rng);
            assert!((0..=5).contains(&x));
            lo_seen |= x == 0;
            hi_seen |= x == 5;
            let y = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&y));
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng();
        let even = (0i64..=10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
        let pair_in_order =
            (0i64..=10).prop_flat_map(|lo| (Just(lo), lo..=10)).prop_map(|(lo, hi)| (lo, hi));
        for _ in 0..50 {
            let (lo, hi) = pair_in_order.generate(&mut rng);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let mut rng = rng();
        let u = Union::new(vec![(0, Just(1i64).boxed()), (5, Just(2i64).boxed())]);
        for _ in 0..50 {
            assert_eq!(u.generate(&mut rng), 2);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero weight")]
    fn union_of_nothing_panics() {
        let _ = Union::<i64>::new(vec![]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng();
        let (a, b, c) = (0i64..=1, 10i64..=11, 20i64..=21).generate(&mut rng);
        assert!((0..=1).contains(&a));
        assert!((10..=11).contains(&b));
        assert!((20..=21).contains(&c));
    }
}
