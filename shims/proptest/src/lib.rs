//! Offline stand-in for the crates-io `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships a small, fully
//! deterministic property-testing harness exposing the subset of the `proptest` 1.x API the
//! ANOSY-RS test suites use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(...)]` inner attribute and
//!   `pattern in strategy` arguments);
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map` and `boxed`, plus strategies for
//!   integer ranges, tuples, [`strategy::Just`] and weighted unions ([`prop_oneof!`]);
//! * [`collection::vec`] for variable-length vectors;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`test_runner::TestCaseError`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds: every test derives
//! its RNG stream from the test *name* and the case index, so a failure reproduces exactly by
//! rerunning the same test — which is the determinism the two-speed test discipline wants. Case
//! counts come from `ProptestConfig` and can be raised globally with the `PROPTEST_CASES`
//! environment variable (used by the `expensive-tests` CI lane).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0i64..=10, v in proptest::collection::vec(0..3usize, 0..4)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = $crate::test_runner::resolved_cases(&__config);
            // One joint (tuple) strategy, built once — not per case.
            let __strategy = ($($strat,)+);
            for __case in 0..__cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Fails the enclosing proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            __left,
            __right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __left,
                    __right,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the enclosing proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __left,
            __right,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Picks among strategies, optionally with integer weights (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
