//! The deterministic runner behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Configuration of a property test (case count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The number of cases a test will actually run: the configured count, unless the
/// `PROPTEST_CASES` environment variable overrides it (the expensive CI lane sets it higher).
pub fn resolved_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
        Some(n) if n > 0 => n,
        _ => config.cases,
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for the generated input.
    Fail(String),
    /// The generated input was rejected as uninteresting (kept for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected case with the given explanation.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The value source handed to strategies.
///
/// Streams are derived from the *test name* and the case index only, so runs are reproducible
/// across processes, platforms and test orderings.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64)) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("some_test", 3);
        let mut b = TestRng::for_case("some_test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("some_test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut d = TestRng::for_case("other_test", 3);
        let mut e = TestRng::for_case("some_test", 3);
        e.next_u64();
        assert_ne!(d.next_u64(), e.next_u64());
    }

    #[test]
    fn env_override_takes_precedence_when_set() {
        // The override is read per call; the default path is what unit tests exercise.
        let config = ProptestConfig::with_cases(7);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(resolved_cases(&config), 7);
        }
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
