//! Strategies for collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy for `Vec`s whose length is drawn from `sizes` and whose elements come from
/// `element` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "empty size range");
    VecStrategy { element, sizes }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.sizes.end - self.sizes.start) as u64;
        let len = self.sizes.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_respect_their_ranges() {
        let mut rng = TestRng::for_case("collection_tests", 0);
        let strat = vec(0i64..=9, 2..5);
        let mut lens_seen = [false; 5];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            lens_seen[v.len()] = true;
            assert!(v.iter().all(|x| (0..=9).contains(x)));
        }
        assert!(lens_seen[2] && lens_seen[3] && lens_seen[4]);
    }
}
