//! Offline stand-in for the crates-io `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace ships the small slice of the
//! `rand` API it actually uses: a seedable deterministic generator ([`rngs::StdRng`]) and
//! [`Rng::gen_range`] over integer ranges. The generator is SplitMix64 — not cryptographic, but
//! high-quality, stable across platforms and entirely deterministic, which is exactly what the
//! reproducible experiment harness needs. Code written against this shim (`StdRng::seed_from_u64`,
//! `gen_range`) compiles unchanged against real `rand` 0.8; only the concrete streams differ.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns a uniformly random boolean.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                // Spans here are tiny relative to 2^64, so modulo bias is negligible for the
                // experiment harness (and irrelevant for determinism).
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                SampleRange::sample(self.start..=(self.end - 1), rng)
            }
        }
    )*};
}

impl_sample_range!(i64, u64, i32, u32, usize, i16, u16, i8, u8);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): equidistributed, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..=1000), b.gen_range(0i64..=1000));
        }
    }

    #[test]
    fn samples_cover_the_range_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn inclusive_singleton_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(3i32..=3), 3);
        }
    }
}
