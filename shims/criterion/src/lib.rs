//! Offline stand-in for the crates-io `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships a minimal wall-clock
//! benchmark harness exposing the subset of the criterion 0.5 API the `bench` crate uses:
//! [`Criterion::benchmark_group`], group tuning knobs (`sample_size`, `measurement_time`,
//! `warm_up_time`), [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. There is no statistical analysis or HTML
//! report: each benchmark runs `sample_size` timed iterations (after one warm-up iteration,
//! stopping early once `measurement_time` is spent) and prints the mean, min and max per
//! iteration. `--list` and filter arguments from `cargo bench` are honored well enough for CI.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards its trailing arguments; honor `--list` and a name filter,
        // ignore harness flags we don't implement.
        let mut filter = None;
        let mut list_only = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--list" => list_only = true,
                s if s.starts_with("--") => {
                    // Unimplemented harness flags. Consume the value of the value-taking ones so
                    // it is not mistaken for a name filter (which would silently match nothing).
                    const VALUE_FLAGS: &[&str] = &[
                        "--sample-size",
                        "--measurement-time",
                        "--warm-up-time",
                        "--save-baseline",
                        "--baseline",
                        "--profile-time",
                        "--color",
                        "--format",
                        "--logfile",
                    ];
                    if VALUE_FLAGS.contains(&s) {
                        let _ = args.next();
                    }
                }
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, list_only }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn should_run(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing tuning knobs.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark: warm-up iterations run (at least one) until the
    /// budget is spent, as in real criterion.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full_id = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };
        if self.criterion.list_only {
            println!("{full_id}: bench");
            return self;
        }
        if !self.criterion.should_run(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{full_id:<60} (no samples)");
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{full_id:<60} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            mean,
            min,
            max,
            samples.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility; reporting happens per benchmark).
    pub fn finish(&mut self) {}
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up until the budget is spent (at least one iteration).
        let warm_up_started = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_up_started.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Declares a function that runs a list of benchmark functions with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` of a custom-harness bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut c = Criterion { filter: None, list_only: false };
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(5)
                .measurement_time(Duration::from_secs(5))
                .warm_up_time(Duration::ZERO);
            group.bench_function("count_calls", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            group.finish();
        }
        // one warm-up (zero budget still runs one) + five timed iterations
        assert_eq!(calls, 6);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion { filter: Some("wanted".into()), list_only: false };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("other", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran);
    }
}
