//! A minimal, safe epoll wrapper over **raw syscalls** — no `libc`, no registry access.
//!
//! The workspace builds offline, so this shim invokes `epoll_create1` / `epoll_ctl` /
//! `epoll_wait` directly via inline assembly on the architectures it knows (x86-64 and AArch64
//! Linux) and reports [`Epoll::is_supported`]` == false` everywhere else. Callers treat an
//! unsupported platform exactly like an epoll that failed to create: they fall back to their
//! portable polling path. All `unsafe` is confined to this crate; the exposed API is safe:
//!
//! * file descriptors are plain `i32`s the caller owns — registering one never transfers
//!   ownership, and a descriptor closed while registered is simply reported by the kernel as
//!   an error on the next [`Epoll::wait`] or deregistration (never undefined behavior);
//! * [`Epoll::wait`] writes into a caller-provided buffer of plain-old-data [`EpollEvent`]s
//!   and returns how many are valid;
//! * the epoll descriptor itself closes on drop.

/// Readable interest / readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x1;
/// Writable interest / readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x4;
/// Error condition readiness (`EPOLLERR`; always reported, never requested).
pub const EPOLLERR: u32 = 0x8;
/// Hang-up readiness (`EPOLLHUP`; always reported, never requested).
pub const EPOLLHUP: u32 = 0x10;
/// Peer shut down its write side (`EPOLLRDHUP`) — a clean FIN, distinct from `EPOLLHUP`.
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness report from [`Epoll::wait`]: the ready-state bits and the caller's tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// The `data` tag registered with [`Epoll::add`] / [`Epoll::modify`].
    pub data: u64,
}

/// A kernel epoll instance (closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Whether this build can make epoll syscalls at all (Linux on x86-64 or AArch64).
    pub fn is_supported() -> bool {
        sys::SUPPORTED
    }

    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_create1` error, or `Unsupported` on platforms this shim has no
    /// syscall path for.
    pub fn new() -> std::io::Result<Epoll> {
        sys::create().map(|fd| Epoll { fd })
    }

    /// Registers `fd` for the `interest` bits, tagged with `data`.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_ctl` error (e.g. `EEXIST` for an already-registered descriptor).
    pub fn add(&self, fd: i32, interest: u32, data: u64) -> std::io::Result<()> {
        sys::ctl(self.fd, sys::EPOLL_CTL_ADD, fd, interest, data)
    }

    /// Changes a registered descriptor's interest bits and tag.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_ctl` error (e.g. `ENOENT` for an unregistered descriptor).
    pub fn modify(&self, fd: i32, interest: u32, data: u64) -> std::io::Result<()> {
        sys::ctl(self.fd, sys::EPOLL_CTL_MOD, fd, interest, data)
    }

    /// Deregisters a descriptor.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_ctl` error (e.g. `ENOENT` for an unregistered descriptor).
    pub fn delete(&self, fd: i32) -> std::io::Result<()> {
        sys::ctl(self.fd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered descriptor is ready (or `timeout_ms` elapses;
    /// `-1` blocks indefinitely, `0` polls), filling `events` from the front. Returns how many
    /// entries are valid. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_wait` error.
    pub fn wait(&self, timeout_ms: i32, events: &mut [EpollEvent]) -> std::io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        loop {
            match sys::wait(self.fd, events, timeout_ms) {
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close(self.fd);
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use super::EpollEvent;

    pub const SUPPORTED: bool = true;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: u64 = 0x80000;

    /// The kernel's `struct epoll_event`: packed on x86-64 (a 12-byte struct, by ABI
    /// accident), naturally aligned everywhere else.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy, Default)]
    struct RawEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct RawEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: u64 = 291;
        pub const EPOLL_CTL: u64 = 233;
        pub const EPOLL_WAIT: u64 = 232;
        pub const CLOSE: u64 = 3;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: u64 = 20;
        pub const EPOLL_CTL: u64 = 21;
        /// AArch64 has no plain `epoll_wait`; `epoll_pwait` with a null sigmask is identical.
        pub const EPOLL_PWAIT: u64 = 22;
        pub const CLOSE: u64 = 57;
    }

    /// Raw 6-argument syscall. Callers pass zeros for unused arguments — the kernel ignores
    /// registers beyond a syscall's arity.
    ///
    /// SAFETY: the caller must pass a valid syscall number and arguments whose pointees (if
    /// any) live and are correctly sized for the duration of the call.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") n,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> std::io::Result<i64> {
        if ret < 0 {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn create() -> std::io::Result<i32> {
        // SAFETY: epoll_create1 takes one integer flag and touches no caller memory.
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn ctl(epfd: i32, op: i32, fd: i32, interest: u32, data: u64) -> std::io::Result<()> {
        let event = RawEvent { events: interest, data };
        // SAFETY: `event` outlives the call; the kernel reads (never writes) it, and ignores
        // the pointer entirely for EPOLL_CTL_DEL.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as u64,
                op as u64,
                fd as u64,
                std::ptr::addr_of!(event) as u64,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        let mut raw = vec![RawEvent::default(); events.len()];
        #[cfg(target_arch = "x86_64")]
        let nr_wait = nr::EPOLL_WAIT;
        #[cfg(target_arch = "aarch64")]
        let nr_wait = nr::EPOLL_PWAIT;
        // SAFETY: `raw` outlives the call and its length bounds the kernel's writes; the
        // fifth/sixth arguments (sigmask and its size on epoll_pwait) are null/zero, which the
        // kernel accepts as "no mask"; plain epoll_wait ignores them.
        let ret = unsafe {
            syscall6(
                nr_wait,
                epfd as u64,
                raw.as_mut_ptr() as u64,
                raw.len() as u64,
                timeout_ms as u64,
                0,
                0,
            )
        };
        let n = check(ret)? as usize;
        for (out, raw) in events.iter_mut().zip(&raw[..n]) {
            *out = EpollEvent { events: raw.events, data: raw.data };
        }
        Ok(n)
    }

    pub fn close(fd: i32) {
        // SAFETY: close takes one integer; a failure (e.g. EBADF) is ignored, as in every
        // Drop-time close.
        let _ = unsafe { syscall6(nr::CLOSE, fd as u64, 0, 0, 0, 0, 0) };
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    use super::EpollEvent;

    pub const SUPPORTED: bool = false;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    fn unsupported<T>() -> std::io::Result<T> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "epoll is only available on Linux (x86-64 / AArch64) in this build",
        ))
    }

    pub fn create() -> std::io::Result<i32> {
        unsupported()
    }

    pub fn ctl(_: i32, _: i32, _: i32, _: u32, _: u64) -> std::io::Result<()> {
        unsupported()
    }

    pub fn wait(_: i32, _: &mut [EpollEvent], _: i32) -> std::io::Result<usize> {
        unsupported()
    }

    pub fn close(_: i32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn readiness_round_trips_through_a_socket_pair() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        assert!(Epoll::is_supported());
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        epoll.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        let mut events = [EpollEvent::default(); 8];

        // Nothing readable yet: a zero-timeout wait returns empty.
        assert_eq!(epoll.wait(0, &mut events).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = epoll.wait(1_000, &mut events).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].data, 7);
        assert_ne!(events[0].events & EPOLLIN, 0);

        // Interest can be modified; a FIN reports EPOLLRDHUP-or-HUP readiness.
        epoll.modify(server.as_raw_fd(), EPOLLIN | EPOLLOUT | EPOLLRDHUP, 9).unwrap();
        drop(client);
        let n = epoll.wait(1_000, &mut events).unwrap();
        assert!(n >= 1);
        assert_eq!(events[0].data, 9);
        assert_ne!(events[0].events & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);

        epoll.delete(server.as_raw_fd()).unwrap();
        assert!(epoll.delete(server.as_raw_fd()).is_err(), "double delete reports ENOENT");
        assert_eq!(epoll.wait(0, &mut []).unwrap(), 0, "an empty buffer asks for nothing");
    }

    #[test]
    fn errors_are_io_errors_not_panics() {
        if !Epoll::is_supported() {
            assert!(Epoll::new().is_err());
            return;
        }
        let epoll = Epoll::new().unwrap();
        // A nonsense descriptor is a clean kernel error.
        assert!(epoll.add(-1, EPOLLIN, 0).is_err());
        assert!(epoll.delete(987_654).is_err());
    }
}
