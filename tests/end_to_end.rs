//! End-to-end integration: typed secrets, the full synthesize → verify → register → downgrade
//! pipeline over both abstract domains, the IFC staging, and the benchmark suite wired through
//! the same public API a downstream application would use.

use anosy::prelude::*;

anosy::domains::secret_record! {
    /// The paper's §2 secret type, declared the way an application would.
    pub struct UserLoc {
        x: 0..=400,
        y: 0..=400,
    }
}

fn nearby(x: i64, y: i64) -> Pred {
    ((IntExpr::var(0) - x).abs() + (IntExpr::var(1) - y).abs()).le(100)
}

#[test]
fn typed_secret_pipeline_with_interval_domain() {
    let layout = UserLoc::layout();
    let mut synth = Synthesizer::new();
    let mut session: AnosySession<IntervalDomain> =
        AnosySession::new(layout.clone(), MinSizePolicy::new(100));
    for (x, y) in [(200, 200), (300, 200)] {
        let q = QueryDef::new(format!("nearby_{x}_{y}"), layout.clone(), nearby(x, y)).unwrap();
        session.register_synthesized(&mut synth, &q, ApproxKind::Under, None).unwrap();
    }
    let user = Protected::new(UserLoc { x: 300, y: 200 });
    assert!(session.downgrade_secret(&user, "nearby_200_200").unwrap());
    assert!(session.downgrade_secret(&user, "nearby_300_200").unwrap());
    let knowledge = session.knowledge_of(&UserLoc { x: 300, y: 200 }.to_point());
    assert!(knowledge.size() > 100);
    assert!(knowledge.shannon_entropy() > 6.0);
}

#[test]
fn lio_staged_downgrade_keeps_the_context_public() {
    let layout = UserLoc::layout();
    let mut synth = Synthesizer::new();
    let mut session: AnosySession<PowersetDomain> =
        AnosySession::new(layout.clone(), MinSizePolicy::new(100));
    let q = QueryDef::new("nearby_200_200", layout.clone(), nearby(200, 200)).unwrap();
    session.register_synthesized(&mut synth, &q, ApproxKind::Under, Some(3)).unwrap();

    let mut lio = Lio::new(SecLevel::Public, SecLevel::Secret);
    let secret = lio.label(SecLevel::Secret, UserLoc { x: 180, y: 240 }.to_point()).unwrap();
    let answer = session.downgrade_labeled(&mut lio, &secret, "nearby_200_200").unwrap();
    assert_eq!(*answer.label(), SecLevel::Public);
    assert!(*answer.peek_tcb());
    assert_eq!(lio.current_label(), SecLevel::Public);
    // Ordinary (non-downgrade) access to the secret still taints the context as usual.
    let _ = lio.unlabel(&secret).unwrap();
    assert_eq!(lio.current_label(), SecLevel::Secret);
    assert!(lio.label(SecLevel::Public, 1).is_err());
}

#[test]
fn over_approximations_can_be_tracked_too() {
    // The paper notes AnosyT can also trace over-approximations (§3). Register the same query
    // with an over-approximation and check that the posterior contains the exact posterior.
    let layout = UserLoc::layout();
    let mut synth = Synthesizer::new();
    let mut verifier = Verifier::new();
    let q = QueryDef::new("nearby_200_200", layout.clone(), nearby(200, 200)).unwrap();
    let over = synth.synth_powerset(&q, ApproxKind::Over, 3).unwrap();
    assert!(verifier.verify_indsets(&q, &over).unwrap().is_verified());

    let prior = PowersetDomain::top(&layout);
    let (post_true, _) = over.posterior(&prior);
    let mut solver = Solver::new();
    let exact_true = solver.count_models(q.pred(), &layout.space()).unwrap();
    assert!(post_true.size() >= exact_true);
}

#[test]
fn benchmark_suite_runs_through_the_public_api() {
    // Smallest two benchmarks end-to-end: synthesize, verify, register, downgrade a plausible
    // secret under a permissive policy.
    use anosy::suite::benchmarks::{birthday, photo};
    let mut synth = Synthesizer::new();
    for (benchmark, secret) in
        [(birthday(), Point::new(vec![263, 1980])), (photo(), Point::new(vec![1, 2, 1984]))]
    {
        let layout = benchmark.query.layout().clone();
        let mut session: AnosySession<PowersetDomain> =
            AnosySession::new(layout, MinSizePolicy::new(1));
        session
            .register_synthesized(&mut synth, &benchmark.query, ApproxKind::Under, Some(3))
            .unwrap();
        let answer =
            session.downgrade(&Protected::new(secret.clone()), benchmark.query.name()).unwrap();
        assert!(answer, "{}: the chosen secret satisfies the query", benchmark.id);
        assert!(session.knowledge_of(&secret).size() >= 1);
    }
}

#[test]
fn policy_violations_report_both_posterior_sizes_and_leave_state_unchanged() {
    let layout = UserLoc::layout();
    let mut synth = Synthesizer::new();
    // A draconian policy that no posterior of this query can satisfy: the whole space has
    // 160 801 locations, and answering either way already rules out part of it.
    let mut session: AnosySession<PowersetDomain> =
        AnosySession::new(layout.clone(), MinSizePolicy::new(200_000));
    let q = QueryDef::new("nearby_200_200", layout, nearby(200, 200)).unwrap();
    session.register_synthesized(&mut synth, &q, ApproxKind::Under, Some(3)).unwrap();

    let user = Protected::new(Point::new(vec![300, 200]));
    match session.downgrade(&user, "nearby_200_200") {
        Err(AnosyError::PolicyViolation {
            policy,
            posterior_true_size,
            posterior_false_size,
            ..
        }) => {
            assert!(policy.contains("200000"));
            assert!(posterior_true_size < 200_000);
            assert!(posterior_false_size < 200_000);
        }
        other => panic!("expected a policy violation, got {other:?}"),
    }
    // Nothing was recorded about the secret and unknown queries are still reported as such.
    assert_eq!(session.tracked_secrets(), 0);
    assert!(matches!(session.downgrade(&user, "missing"), Err(AnosyError::UnknownQuery { .. })));
}
