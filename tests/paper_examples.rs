//! Integration tests pinning the concrete numbers the paper walks through in §2 and §3:
//! the `nearby` indistinguishability sets, the posterior sizes after each downgrade, and the
//! policy-violation point.

use anosy::prelude::*;

fn loc_layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build()
}

fn nearby(x: i64, y: i64) -> Pred {
    ((IntExpr::var(0) - x).abs() + (IntExpr::var(1) - y).abs()).le(100)
}

fn nearby_query(x: i64, y: i64) -> QueryDef {
    QueryDef::new(format!("nearby_{x}_{y}"), loc_layout(), nearby(x, y)).unwrap()
}

/// §2.2: the hand-written `under_indset` for nearby (200,200) verifies, and its posterior from ⊤
/// has size 6837 on the True branch (the |post1| of §3).
#[test]
fn section_2_under_indset_and_post1() {
    let truthy = IntervalDomain::from_intervals(vec![AInt::new(121, 279), AInt::new(179, 221)]);
    let falsy = IntervalDomain::from_intervals(vec![AInt::new(0, 400), AInt::new(0, 99)]);
    let indsets = IndSets::new(ApproxKind::Under, truthy, falsy);

    let mut verifier = Verifier::new();
    let report = verifier.verify_indsets(&nearby_query(200, 200), &indsets).unwrap();
    assert!(report.is_verified(), "{report}");

    let prior = IntervalDomain::top(&loc_layout());
    let (post_true, post_false) = indsets.posterior(&prior);
    assert_eq!(post_true.size(), 6837);
    assert_eq!(post_false.size(), 40100);
}

/// §2.1: downgrading nearby (200,200) and nearby (400,200) both as true pins the secret down to
/// exactly (300, 200) — the motivation for bounding downgrades.
#[test]
fn section_2_two_queries_reveal_the_secret() {
    let mut solver = Solver::new();
    let both = nearby(200, 200).and_also(nearby(400, 200));
    let space = loc_layout().space();
    assert_eq!(solver.count_models(&both, &space).unwrap(), 1);
    assert_eq!(solver.find_model(&both, &space).unwrap().unwrap(), Point::new(vec![300, 200]));
}

/// §3: the bounded downgrade authorizes nearby (200,200) and nearby (300,200) but refuses
/// nearby (400,200) under `size > 100`, using the synthesized powerset approximations.
#[test]
fn section_3_bounded_downgrade_walkthrough() {
    let mut synthesizer = Synthesizer::new();
    let mut session: AnosySession<PowersetDomain> =
        AnosySession::new(loc_layout(), MinSizePolicy::new(100));
    for (x, y) in [(200, 200), (300, 200), (400, 200)] {
        session
            .register_synthesized(&mut synthesizer, &nearby_query(x, y), ApproxKind::Under, Some(3))
            .unwrap();
    }

    let secret_point = Point::new(vec![300, 200]);
    let secret = Protected::new(secret_point.clone());
    assert!(session.downgrade(&secret, "nearby_200_200").unwrap());
    let k1 = session.knowledge_of(&secret_point).size();
    assert!(k1 > 100, "first posterior should easily satisfy the policy (got {k1})");

    assert!(session.downgrade(&secret, "nearby_300_200").unwrap());
    let k2 = session.knowledge_of(&secret_point).size();
    assert!(k2 <= k1, "knowledge must be monotonically refined");
    assert!(k2 > 100);

    let err = session.downgrade(&secret, "nearby_400_200").unwrap_err();
    assert!(matches!(err, AnosyError::PolicyViolation { .. }), "got {err}");
    // The refused downgrade leaves the knowledge untouched.
    assert_eq!(session.knowledge_of(&secret_point).size(), k2);
}

/// Fig. 1a: nearby (200,200) ∧ nearby (300,200) leaves well over 100 candidate locations, which
/// is why the paper's policy admits that pair of queries.
#[test]
fn figure_1_intersection_sizes() {
    let mut solver = Solver::new();
    let space = loc_layout().space();
    let pair = nearby(200, 200).and_also(nearby(300, 200));
    let intersection = solver.count_models(&pair, &space).unwrap();
    assert!(intersection > 100);
    // And the paper's exact-posterior narrative: it is smaller than either single posterior.
    let single = solver.count_models(&nearby(200, 200), &space).unwrap();
    assert!(intersection < single);
}
