//! Cross-crate soundness properties: synthesized approximations vs the exact ind. sets, and the
//! §3 correctness argument (tracked posteriors under-approximate the attacker's exact knowledge)
//! checked end-to-end on randomized query histories.

use anosy::prelude::*;
use proptest::prelude::*;

fn loc_layout() -> SecretLayout {
    SecretLayout::builder().field("x", 0, 60).field("y", 0, 60).build()
}

fn nearby(x: i64, y: i64, r: i64) -> Pred {
    ((IntExpr::var(0) - x).abs() + (IntExpr::var(1) - y).abs()).le(r)
}

fn quick_synth() -> Synthesizer {
    Synthesizer::with_config(
        SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(2),
    )
}

/// Under-approximations never overcount and over-approximations never undercount, for both
/// domains, across a spread of query shapes.
#[test]
fn synthesized_sizes_bracket_the_exact_sizes() {
    let layout = loc_layout();
    let queries = vec![
        QueryDef::new("diamond", layout.clone(), nearby(30, 30, 15)).unwrap(),
        QueryDef::new("corner", layout.clone(), nearby(0, 60, 20)).unwrap(),
        QueryDef::new("band", layout.clone(), IntExpr::var(0).between(10, 14)).unwrap(),
        QueryDef::new("points", layout.clone(), IntExpr::var(1).one_of([3, 17, 55])).unwrap(),
        QueryDef::new(
            "relational",
            layout.clone(),
            (IntExpr::var(0) - IntExpr::var(1)).abs().le(5),
        )
        .unwrap(),
    ];
    let mut solver = Solver::with_config(SolverConfig::for_tests());
    let mut synth = quick_synth();
    for q in &queries {
        let space = q.layout().space();
        let exact_true = solver.count_models(q.pred(), &space).unwrap();
        let exact_false = space.count() - exact_true;

        let under = synth.synth_powerset(q, ApproxKind::Under, 3).unwrap();
        assert!(under.truthy().size() <= exact_true, "{}: under true too big", q.name());
        assert!(under.falsy().size() <= exact_false, "{}: under false too big", q.name());

        let over = synth.synth_interval(q, ApproxKind::Over).unwrap();
        assert!(over.truthy().size() >= exact_true, "{}: over true too small", q.name());
        assert!(over.falsy().size() >= exact_false, "{}: over false too small", q.name());

        // Powerset over-approximations refine the interval ones but never drop below exact.
        let over_p = synth.synth_powerset(q, ApproxKind::Over, 3).unwrap();
        assert!(over_p.truthy().size() >= exact_true);
        assert!(over_p.truthy().size() <= over.truthy().size());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized §3 soundness: for a random secret and a random sequence of proximity queries,
    /// after every authorized downgrade the tracked knowledge is contained in the exact attacker
    /// knowledge, and the policy is never observed violated on the tracked knowledge.
    #[test]
    fn tracked_knowledge_under_approximates_exact_knowledge(
        secret_x in 0i64..=60,
        secret_y in 0i64..=60,
        origins in proptest::collection::vec((0i64..=60, 0i64..=60, 10i64..=25), 1..5),
    ) {
        let layout = loc_layout();
        let mut synth = quick_synth();
        let mut session: AnosySession<PowersetDomain> =
            AnosySession::new(layout.clone(), MinSizePolicy::new(20));
        let mut queries = Vec::new();
        for (i, (x, y, r)) in origins.iter().enumerate() {
            let q = QueryDef::new(format!("q{i}"), layout.clone(), nearby(*x, *y, *r)).unwrap();
            session.register_synthesized(&mut synth, &q, ApproxKind::Under, Some(2)).unwrap();
            queries.push(q);
        }

        let secret_point = Point::new(vec![secret_x, secret_y]);
        let secret = Protected::new(secret_point.clone());
        let mut solver = Solver::with_config(SolverConfig::for_tests());
        let mut exact_knowledge = Pred::True;
        for q in &queries {
            match session.downgrade(&secret, q.name()) {
                Ok(answer) => {
                    let consistent =
                        if answer { q.pred().clone() } else { q.pred().clone().negate() };
                    exact_knowledge = exact_knowledge.and_also(consistent);
                    let tracked = session.knowledge_of(&secret_point);
                    // P_i ⊆ K_i (§3's correctness argument).
                    let obligation = tracked.domain().to_pred().implies(exact_knowledge.clone());
                    prop_assert!(
                        solver.is_valid(&obligation, &layout.space()).unwrap(),
                        "tracked knowledge exceeded the exact knowledge after {}", q.name()
                    );
                    // The policy holds on the tracked knowledge after every authorized query.
                    prop_assert!(tracked.size() > 20);
                }
                Err(AnosyError::PolicyViolation { .. }) => break,
                Err(other) => return Err(TestCaseError::fail(other.to_string())),
            }
        }
    }

    /// The advertising harness never authorizes a query whose posterior violates the policy,
    /// regardless of the random seed.
    #[test]
    fn advertising_runs_respect_the_policy(seed in 0u64..1000) {
        use anosy::suite::AdvertisingConfig;
        let mut config = AdvertisingConfig::quick();
        config.seed = seed;
        config.runs = 2;
        config.num_queries = 5;
        config.powerset_sizes = vec![2];
        config.synth = SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(1);
        let outcomes = anosy::suite::run_advertising(&config).unwrap();
        prop_assert_eq!(outcomes.len(), 1);
        for n in &outcomes[0].authorized_per_run {
            prop_assert!(*n <= config.num_queries);
        }
    }
}
