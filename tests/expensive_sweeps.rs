//! Paper-scale randomized sweeps — the slow half of the two-speed test discipline.
//!
//! The default `cargo test -q` profile keeps everything deterministic and fast
//! (`SolverConfig::for_tests()`, few proptest cases, reduced workloads). The tests in this file
//! run the *paper-scale* configurations with default solver budgets instead; they are `#[ignore]`d
//! unless the `expensive-tests` feature is enabled:
//!
//! ```text
//! cargo test --features expensive-tests            # runs them by default
//! cargo test -- --include-ignored                  # or opt in without the feature
//! ```

use anosy::prelude::*;
use anosy::suite::{run_advertising, AdvertisingConfig};

#[cfg_attr(
    not(feature = "expensive-tests"),
    ignore = "paper-scale; enable with --features expensive-tests"
)]
#[test]
fn advertising_at_paper_scale_matches_figure_6_shape() {
    let outcomes = run_advertising(&AdvertisingConfig::paper()).expect("paper config runs");
    assert_eq!(outcomes.len(), 5);
    let mut previous_mean = 0.0;
    for o in &outcomes {
        assert_eq!(o.authorized_per_run.len(), 20);
        let curve = o.survivor_curve(50);
        assert!(curve.windows(2).all(|w| w[0] >= w[1]), "survivor curve must be non-increasing");
        // The Figure 6 trend: larger powersets authorize at least as many queries on average.
        assert!(
            o.mean_authorized() >= previous_mean,
            "k={} mean {} dropped below {previous_mean}",
            o.k,
            o.mean_authorized()
        );
        previous_mean = o.mean_authorized();
    }
}

#[cfg_attr(
    not(feature = "expensive-tests"),
    ignore = "paper-scale; enable with --features expensive-tests"
)]
#[test]
fn all_benchmarks_verify_in_both_domains_at_default_budgets() {
    let mut synth = Synthesizer::new();
    let mut verifier = Verifier::new();
    for b in anosy::suite::all_benchmarks() {
        for kind in ApproxKind::ALL {
            let interval = synth.synth_interval(&b.query, kind).expect("interval synthesis");
            assert!(
                verifier.verify_indsets(&b.query, &interval).expect("verification").is_verified(),
                "{:?}/{kind} interval approximation failed verification",
                b.id
            );
            let powerset = synth.synth_powerset(&b.query, kind, 5).expect("powerset synthesis");
            assert!(
                verifier.verify_indsets(&b.query, &powerset).expect("verification").is_verified(),
                "{:?}/{kind} powerset-5 approximation failed verification",
                b.id
            );
        }
    }
}

#[cfg_attr(
    not(feature = "expensive-tests"),
    ignore = "paper-scale; enable with --features expensive-tests"
)]
#[test]
fn paper_scale_downgrade_sequence_is_reproducible() {
    // Two full paper-scale runs must agree exactly (the whole pipeline is deterministic).
    let a = run_advertising(&AdvertisingConfig::paper()).expect("paper config runs");
    let b = run_advertising(&AdvertisingConfig::paper()).expect("paper config runs");
    assert_eq!(a, b);
}
