//! The event-loop server under a simulated network — chaos, deterministically.
//!
//! The `serving_frontend` example drives the sans-IO `Frontend` by hand; this one runs the full
//! transport stack (`anosy::serve::Server`) over `SimNet`, the seeded in-memory network: two
//! clients connect, their writes are chunked and delayed at byte level, one of them sends
//! garbage and then dies mid-line with a connection reset. Everything — chunk boundaries,
//! latencies, the interleaving, the teardown — derives from one seed, so the run below is
//! reproducible bit for bit (pass a different seed as the first argument to see a different
//! chaos unfold to the same answers).
//!
//! Run with: `cargo run --release -p anosy --example simulated_server [seed]`

use anosy::prelude::*;
use anosy::serve::{Server, ServerConfig, SimNet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    run(ServeConfig::new(), seed)
}

fn run(config: ServeConfig, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
    let deployment: Deployment<IntervalDomain> = Deployment::new(layout, config);
    let frontend = Frontend::new(deployment);

    // Script the network. Virtual times order the phases; chunking and per-chunk latency come
    // from the seed. `alice` is a well-behaved operator+client; `mallory` opens a session,
    // sends a malformed line, then resets mid-request — her session must be torn down without
    // disturbing alice's service.
    let mut sim = SimNet::new(seed);
    let alice = sim.connect(0);
    sim.send(
        alice,
        0,
        "register name=nearby kind=under members=- pred=abs(x - 200) + abs(y - 200) <= 100\n",
    );
    sim.send(alice, 1000, "open min-size:100\n");
    sim.send(
        alice,
        2000,
        "downgrade session=1 query=nearby secret=300,200\n\
         downgrade session=1 query=nearby secret=10,10\n",
    );
    let mallory = sim.connect(3000);
    sim.send(mallory, 3000, "open allow-all\n");
    sim.send(mallory, 4000, "this is not a request\n");
    sim.send(mallory, 5000, "downgrade session=2 query=nearby secr");
    sim.abort(mallory, 6000);
    sim.send(alice, 7000, "stats\n");
    sim.half_close(alice, 8000);

    let mut server = Server::new(frontend, sim, ServerConfig::new());
    server.run();

    println!("seed {seed}: {:?}", server.stats());
    for (name, client) in [("alice", alice), ("mallory", mallory)] {
        println!("--- {name} ({client}) received:");
        for line in server.transport().received_text(client).lines() {
            println!("    {line}");
        }
    }
    for denial in server.io_log() {
        println!("logged denial: {denial}");
    }
    println!(
        "open sessions after teardown: {} ({} torn down by disconnects)",
        server.frontend().open_sessions(),
        server.frontend().stats().sessions_torn_down,
    );
    assert_eq!(server.frontend().open_sessions(), 0, "every connection's sessions released");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The doc-facing walkthrough must keep running to completion (with test-sized solver
    /// budgets, so a regression surfaces as an error instead of a hang).
    #[test]
    fn simulated_server_runs_to_completion() {
        run(ServeConfig::for_tests(), 7).expect("the simulated-server walkthrough succeeds");
    }
}
