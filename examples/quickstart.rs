//! Quickstart: the paper's §2 walkthrough, end to end.
//!
//! A location-based application wants to show restaurant ads to nearby users without learning
//! their exact location. We declare the secret space, write the `nearby` queries, let ANOSY-RS
//! synthesize and verify their knowledge approximations, and then run the bounded downgrade
//! under the `size > 100` policy — reproducing the authorize/authorize/refuse sequence of §3.
//!
//! Run with: `cargo run --release -p anosy --example quickstart`

use anosy::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(Synthesizer::new())
}

fn run(mut synthesizer: Synthesizer) -> Result<(), Box<dyn std::error::Error>> {
    // The secret: the user's location in a 400 × 400 grid (the paper's UserLoc).
    let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
    println!("secret space: {layout} ({} possible locations)", layout.space_size());

    // The queries: Manhattan-distance proximity checks around three restaurant branches.
    let nearby =
        |x: i64, y: i64| ((IntExpr::var(0) - x).abs() + (IntExpr::var(1) - y).abs()).le(100);
    let origins = [(200i64, 200i64), (300, 200), (400, 200)];

    // "Compile time": synthesize + verify the knowledge approximations and register them.
    let mut session: AnosySession<PowersetDomain> =
        AnosySession::new(layout.clone(), MinSizePolicy::new(100));
    for (x, y) in origins {
        let query = QueryDef::new(format!("nearby_{x}_{y}"), layout.clone(), nearby(x, y))?;
        session.register_synthesized(&mut synthesizer, &query, ApproxKind::Under, Some(3))?;
        println!("registered {} (verified knowledge approximation)", query.name());
    }

    // "Run time": the user is secretly at (300, 200).
    let secret_point = Point::new(vec![300, 200]);
    let secret = Protected::new(secret_point.clone());
    println!("\ndowngrading queries against the protected secret {secret}...");
    for (x, y) in origins {
        let name = format!("nearby_{x}_{y}");
        match session.downgrade(&secret, &name) {
            Ok(answer) => {
                let knowledge = session.knowledge_of(&secret_point);
                println!(
                    "  {name:<16} -> {answer:<5} | attacker knowledge: {} locations ({:.1} bits)",
                    knowledge.size(),
                    knowledge.shannon_entropy()
                );
            }
            Err(AnosyError::PolicyViolation {
                policy,
                posterior_true_size,
                posterior_false_size,
                ..
            }) => {
                println!(
                    "  {name:<16} -> REFUSED by {policy} (posteriors would be {posterior_true_size} / {posterior_false_size} locations)"
                );
            }
            Err(other) => return Err(other.into()),
        }
    }

    println!(
        "\nfinal knowledge still contains {} candidate locations — the exact location was never revealed.",
        session.knowledge_of(&secret_point).size()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The doc-facing walkthrough must keep running to completion (with test-sized solver
    /// budgets, so a regression surfaces as an error instead of a hang).
    #[test]
    fn quickstart_runs_to_completion() {
        let synthesizer = Synthesizer::with_config(
            SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(2),
        );
        run(synthesizer).expect("the quickstart walkthrough succeeds");
    }
}
