//! The secure-advertising case study (§6.2 / Figure 6), at a reduced scale.
//!
//! A restaurant chain runs a sequence of proximity queries against the protected location of a
//! user. The AnosyT session authorizes queries only while the (under-approximated) attacker
//! knowledge stays above 100 candidate locations. The example prints, for several powerset sizes
//! `k`, how many execution instances were still authorized at each query — the shape of Fig. 6.
//!
//! Run with: `cargo run --release -p anosy --example secure_advertising`
//! (pass `--full` for the paper-scale configuration: 50 queries, 20 runs, k ∈ {1,3,5,7,10}).

use anosy::suite::{run_advertising, AdvertisingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        AdvertisingConfig::paper()
    } else {
        let mut c = AdvertisingConfig::paper();
        c.num_queries = 15;
        c.runs = 8;
        c.powerset_sizes = vec![1, 3, 5];
        c
    };
    run(&config)
}

fn run(config: &AdvertisingConfig) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "secure advertising: {} sequential nearby queries, {} randomized executions, policy size > {}",
        config.num_queries, config.runs, config.policy_min_size
    );
    println!("powerset sizes k = {:?}\n", config.powerset_sizes);

    let outcomes = run_advertising(config)?;
    println!("instances still authorized at the i-th query (i = 1..{}):", config.num_queries);
    for outcome in &outcomes {
        let curve = outcome.survivor_curve(config.num_queries);
        let rendered: Vec<String> = curve.iter().map(|n| format!("{n:>2}")).collect();
        println!("  k = {:>2}: {}", outcome.k, rendered.join(" "));
        println!(
            "          max {} authorized queries, mean {:.1} per execution",
            outcome.max_authorized(),
            outcome.mean_authorized()
        );
    }

    println!("\nLarger powersets track knowledge more precisely and therefore authorize more");
    println!("sequential declassifications before the policy trips — the Figure 6 effect.");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anosy::prelude::{SolverConfig, SynthConfig};

    /// The doc-facing entry point must keep running to completion on a small configuration.
    #[test]
    fn reduced_experiment_runs_to_completion() {
        let mut config = AdvertisingConfig::quick();
        config.synth = SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(1);
        run(&config).expect("the reduced advertising experiment succeeds");
    }
}
