//! Benchmark explorer: runs the synthesis + verification pipeline on the Mardziel et al.
//! benchmarks (B1–B5) and prints Table-1-style ground truth next to the synthesized
//! approximations, for both the interval and the powerset domain.
//!
//! Run with: `cargo run --release -p anosy --example benchmark_explorer [k]`
//! where the optional `k` is the powerset size (default 3).

use anosy::prelude::*;
use anosy::suite::benchmarks::all_benchmarks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    run(k, SynthConfig::default())
}

fn run(k: usize, config: SynthConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mut solver = Solver::with_config(config.solver.clone());
    let mut synthesizer = Synthesizer::with_config(config);
    let mut verifier = Verifier::new();

    for benchmark in all_benchmarks() {
        let (exact_true, exact_false) = benchmark.ground_truth(&mut solver)?;
        println!("\n{} — {}", benchmark.id, benchmark.description);
        println!(
            "  secret: {} fields, {} possible values",
            benchmark.field_count(),
            benchmark.query.layout().space_size()
        );
        println!("  exact ind. sets: {exact_true} true / {exact_false} false");

        for kind in ApproxKind::ALL {
            let interval = synthesizer.synth_interval(&benchmark.query, kind)?;
            let interval_ok = verifier.verify_indsets(&benchmark.query, &interval)?.is_verified();
            let powerset = synthesizer.synth_powerset(&benchmark.query, kind, k)?;
            let powerset_ok = verifier.verify_indsets(&benchmark.query, &powerset)?.is_verified();
            println!(
                "  {kind:>5}-approx  interval: {:>13} / {:<13} ({})",
                interval.truthy().size(),
                interval.falsy().size(),
                if interval_ok { "verified" } else { "VERIFICATION FAILED" }
            );
            println!(
                "               powerset{k}: {:>12} / {:<13} ({})",
                powerset.truthy().size(),
                powerset.falsy().size(),
                if powerset_ok { "verified" } else { "VERIFICATION FAILED" }
            );
        }
    }

    println!("\nsolver effort so far: {}", synthesizer.solver_stats());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The doc-facing entry point must keep running over all five benchmarks (small powerset,
    /// test-sized solver budgets).
    #[test]
    fn explorer_runs_all_benchmarks_to_completion() {
        let config = SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(1);
        run(2, config).expect("the benchmark explorer succeeds");
    }
}
