//! Serving frontend: the uniform request/response protocol, end to end.
//!
//! The other examples call `AnosySession` directly. This one talks to the deployment the way a
//! server transport would: typed `ServeRequest`s submitted over logical connections into a
//! sans-IO `Frontend`, per-tick batching of downgrades, responses tagged with request ids, and
//! the line-oriented wire form every request and response also has (`anosy-served` speaks
//! exactly these lines over stdin/stdout). Finishes with a save + verified warm start, the
//! restart path of a real deployment.
//!
//! Run with: `cargo run --release -p anosy --example serving_frontend`

use anosy::prelude::*;
use anosy::serve::{proto::ServeRequest as Req, wire, ServeResponse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(ServeConfig::new())
}

fn run(config: ServeConfig) -> Result<(), Box<dyn std::error::Error>> {
    // The deployment: the paper's 400 × 400 location grid, served through a frontend.
    let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
    let deployment: Deployment<IntervalDomain> = Deployment::new(layout.clone(), config);
    let mut frontend = Frontend::new(deployment);

    // Two logical connections: an operator registering the query set, and a client app.
    let operator = frontend.connect();
    let client = frontend.connect();

    // Tick 1 — the operator registers a query (synthesize + verify once per deployment) and the
    // client opens a session under the paper's min-size policy. Requests are plain data; their
    // wire lines are shown alongside.
    let nearby = ((IntExpr::var(0) - 200).abs() + (IntExpr::var(1) - 200).abs()).le(100);
    let register = Req::RegisterQuery {
        query: QueryDef::new("nearby_200_200", layout.clone(), nearby)?,
        kind: ApproxKind::Under,
        members: None,
    };
    let open = Req::OpenSession { policy: PolicySpec::parse("min-size:100").unwrap() };
    println!("-> {}", wire::encode_request(&register)?);
    println!("-> {}", wire::encode_request(&open)?);
    frontend.submit(operator, register);
    frontend.submit(client, open);
    let mut session = SessionId(0);
    for tagged in frontend.tick() {
        println!("<- {} {}", tagged.request, wire::encode_response(&tagged.response));
        if let ServeResponse::SessionOpened { session: id } = tagged.response {
            session = id;
        }
    }

    // Tick 2 — a burst of downgrade requests lands in one tick: the frontend regroups them into
    // one batch for the sharded driver, and answers element-wise exactly as sequential
    // `downgrade` calls would (the protocol's determinism guarantee).
    for (x, y) in [(300, 200), (10, 10), (200, 200), (300, 200)] {
        let request = Req::Downgrade {
            session,
            secret: Point::new(vec![x, y]),
            query: "nearby_200_200".into(),
        };
        println!("-> {}", wire::encode_request(&request)?);
        frontend.submit(client, request);
    }
    for tagged in frontend.tick() {
        println!("<- {} {}", tagged.request, wire::encode_response(&tagged.response));
    }

    // Tick 3 — inspect what the monitor now knows, and the deployment-wide counters.
    frontend.submit(client, Req::Knowledge { session, secret: Point::new(vec![300, 200]) });
    frontend.submit(operator, Req::Stats);
    for tagged in frontend.tick() {
        println!("<- {} {}", tagged.request, wire::encode_response(&tagged.response));
    }

    // Tick 4 — persistence: save the synthesis cache, then prove a restarted deployment can
    // warm-start from it with every entry re-verified against its refinement obligations.
    let path = std::env::temp_dir().join("anosy-serving-frontend-example.cache");
    frontend.submit(operator, Req::SaveCache { path: path.clone() });
    for tagged in frontend.tick() {
        println!("<- {} {}", tagged.request, wire::encode_response(&tagged.response));
    }

    let restarted: Deployment<IntervalDomain> =
        Deployment::new(layout, frontend.deployment().config().clone());
    let mut restarted_front = Frontend::new(restarted);
    let conn = restarted_front.connect();
    let warm = Req::WarmStart { path: path.clone(), verify: true };
    println!("-> {}", wire::encode_request(&warm)?);
    restarted_front.submit(conn, warm);
    for tagged in restarted_front.tick() {
        println!("<- {} {}", tagged.request, wire::encode_response(&tagged.response));
    }
    let stats = restarted_front.deployment().stats();
    println!(
        "restart summary: {} entr{} warm-loaded, {} synthesized — the restarted deployment \
         skips cold-start synthesis entirely.",
        stats.cache.warm_loaded,
        if stats.cache.warm_loaded == 1 { "y" } else { "ies" },
        stats.cache.synth_misses,
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The doc-facing walkthrough must keep running to completion (with test-sized solver
    /// budgets, so a regression surfaces as an error instead of a hang).
    #[test]
    fn serving_frontend_runs_to_completion() {
        run(ServeConfig::for_tests()).expect("the serving-frontend walkthrough succeeds");
    }
}
