//! Policy gallery: the same query history evaluated under different quantitative policies, plus
//! a k-ary (multi-output) query and the LIO-staged downgrade.
//!
//! Run with: `cargo run --release -p anosy --example policy_gallery`

use anosy::core::{FnPolicy, KaryIndSets, KaryQuery};
use anosy::prelude::*;

fn build_session(
    synthesizer: &mut Synthesizer,
    layout: &SecretLayout,
    policy: impl Policy<PowersetDomain> + Send + Sync + 'static,
) -> Result<AnosySession<PowersetDomain>, AnosyError> {
    let mut session = AnosySession::new(layout.clone(), policy);
    let nearby =
        |x: i64, y: i64| ((IntExpr::var(0) - x).abs() + (IntExpr::var(1) - y).abs()).le(100);
    for (x, y) in [(200, 200), (300, 200), (400, 200), (150, 320)] {
        let query = QueryDef::new(format!("nearby_{x}_{y}"), layout.clone(), nearby(x, y))?;
        session.register_synthesized(synthesizer, &query, ApproxKind::Under, Some(3))?;
    }
    Ok(session)
}

fn run_history(session: &mut AnosySession<PowersetDomain>, secret: &Protected<Point>) -> usize {
    let names: Vec<String> = session.registered_queries().iter().map(|s| s.to_string()).collect();
    let mut authorized = 0;
    for name in names {
        match session.downgrade(secret, &name) {
            Ok(_) => authorized += 1,
            Err(_) => break,
        }
    }
    authorized
}

/// A named recipe producing a fresh session with one concrete policy installed.
type PolicyRecipe =
    Box<dyn Fn(&mut Synthesizer) -> Result<AnosySession<PowersetDomain>, AnosyError>>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(Synthesizer::new())
}

fn run(mut synthesizer: Synthesizer) -> Result<(), Box<dyn std::error::Error>> {
    let layout = SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build();
    let secret = Protected::new(Point::new(vec![300, 200]));

    println!("same query history, different quantitative policies:");
    let policies: Vec<(&str, PolicyRecipe)> = vec![
        (
            "size > 100 (the paper's qpolicy)",
            Box::new(|s: &mut Synthesizer| {
                build_session(
                    s,
                    &SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build(),
                    MinSizePolicy::new(100),
                )
            }),
        ),
        (
            "residual entropy > 12 bits",
            Box::new(|s: &mut Synthesizer| {
                build_session(
                    s,
                    &SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build(),
                    MinEntropyPolicy::new(12.0),
                )
            }),
        ),
        (
            "custom: Bayes vulnerability < 1%",
            Box::new(|s: &mut Synthesizer| {
                build_session(
                    s,
                    &SecretLayout::builder().field("x", 0, 400).field("y", 0, 400).build(),
                    FnPolicy::new("bayes<1%", |k: &Knowledge<PowersetDomain>| {
                        k.bayes_vulnerability() < 0.01
                    }),
                )
            }),
        ),
    ];
    for (name, build) in policies {
        let mut session = build(&mut synthesizer)?;
        let authorized = run_history(&mut session, &secret);
        println!("  {name:<38} authorized {authorized} of 4 queries");
    }

    // A k-ary query: which quadrant of the map is the user in? (four outputs + otherwise).
    println!("\nk-ary query: map quadrant (policy: size > 10,000)");
    let quadrant = KaryQuery::new(
        "quadrant",
        layout.clone(),
        vec![
            Pred::and(vec![IntExpr::var(0).le(200), IntExpr::var(1).le(200)]),
            Pred::and(vec![IntExpr::var(0).gt(200), IntExpr::var(1).le(200)]),
            Pred::and(vec![IntExpr::var(0).le(200), IntExpr::var(1).gt(200)]),
        ],
    )?;
    let indsets: KaryIndSets<PowersetDomain> =
        KaryIndSets::synthesize(&mut synthesizer, &quadrant, ApproxKind::Under, Some(2))?;
    let mut session: AnosySession<PowersetDomain> =
        AnosySession::new(layout.clone(), MinSizePolicy::new(10_000));
    session.register_kary(quadrant, indsets);
    match session.downgrade_kary(&secret, "quadrant") {
        Ok(output) => println!("  authorized: the user is in quadrant #{output}"),
        Err(e) => println!("  refused: {e}"),
    }

    // Staging over the LIO substrate: the answer comes back as a *public* labeled value.
    println!("\nLIO-staged downgrade:");
    let mut lio = Lio::new(SecLevel::Public, SecLevel::Secret);
    let labeled_secret = lio.label(SecLevel::Secret, Point::new(vec![300, 200]))?;
    let mut session = build_session(&mut synthesizer, &layout, MinSizePolicy::new(100))?;
    let answer = session.downgrade_labeled(&mut lio, &labeled_secret, "nearby_200_200")?;
    println!(
        "  nearby_200_200 -> {} at label {}, ambient context stays at {}",
        answer.peek_tcb(),
        answer.label(),
        lio.current_label()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The doc-facing policy tour must keep running to completion with test-sized budgets.
    #[test]
    fn gallery_runs_to_completion() {
        let synthesizer = Synthesizer::with_config(
            SynthConfig::new().with_solver(SolverConfig::for_tests()).with_seeds(2),
        );
        run(synthesizer).expect("the policy gallery succeeds");
    }
}
